//! The shared round-backfill core behind both first-fit packers.
//!
//! `pack_lookahead_inner` (this crate: per gate-free run, capacity with
//! same-round departure credit) and `pack_cross_gate` (`qccd-pack`:
//! global, no-credit capacity, gate fences, bounded window, optional
//! share-only joins) used to carry near-identical RoundBuild /
//! occupancy-snapshot / arrival-index bookkeeping. [`RoundBackfill`] is
//! that bookkeeping extracted once, parameterized by the
//! [`CreditRule`] and the join fences, so the two packers stay in
//! lockstep by construction.
//!
//! The invariants the core maintains per placed hop:
//!
//! * **first-fit** — a hop joins the earliest round `r ≥` its fence
//!   (per-ion order, per-trap gate fences, scan window) that accepts it;
//! * **machine round rules** — fresh segment, at most one split and one
//!   merge per trap per round;
//! * **capacity** — the destination has room entering the round; under
//!   [`CreditRule::DepartureCredit`] a same-round departure out of the
//!   destination extends that room (the in-run packers replay rounds
//!   atomically), under [`CreditRule::NoCredit`] it never does (so the
//!   flat emission stays serially valid in any within-round order);
//! * **downstream re-check** — placing an arrival at trap `t` in round
//!   `r` raises `t`'s occupancy in every later round; the rounds indexed
//!   by the per-trap arrival lists are re-checked so their own single
//!   arrival still fits.

use qccd_machine::{IonId, ShuttleMove, TrapId};
use std::collections::HashMap;

/// Hops offered to [`RoundBackfill::place`] (backfill attempts).
static BACKFILL_PLACEMENTS: qccd_obs::Counter = qccd_obs::Counter::new("route.backfill_attempts");
/// Hops accepted into an already-open round (first-fit joins).
static BACKFILL_JOINS: qccd_obs::Counter = qccd_obs::Counter::new("route.backfill_accepts");
/// Accepted hops hoisted across at least one later-noted gate.
static BACKFILL_HOISTS: qccd_obs::Counter = qccd_obs::Counter::new("route.backfill_hoists");

/// Whether a same-round departure out of a trap frees capacity for a
/// same-round arrival into it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreditRule {
    /// Arrivals may use the room opened by this round's departures — the
    /// in-run packers' rule, matching `MachineState::apply_round`'s
    /// departures-first replay.
    DepartureCredit,
    /// Arrivals only fit where the trap has room *before* the round — the
    /// cross-gate packer's rule, which keeps every round's moves serially
    /// replayable in any order.
    NoCredit,
}

/// The join rules one packer instantiates the core with.
#[derive(Debug, Clone, Copy)]
pub struct BackfillRules {
    /// Capacity-credit rule for same-round departures.
    pub credit: CreditRule,
    /// When set, a hop joins an existing round only if it shares an
    /// endpoint trap with a member move (the pipeline/corridor case).
    pub share_only: bool,
    /// How many rounds back the first-fit scan looks (`usize::MAX` for
    /// unbounded).
    pub window: usize,
}

/// One round under construction.
#[derive(Debug, Clone)]
pub struct RoundSlot {
    /// Member moves, in placement order.
    pub moves: Vec<ShuttleMove>,
    segments: Vec<(TrapId, TrapId)>,
    arrivals: Vec<u32>,
    departures: Vec<u32>,
    /// Gates noted when this round was opened (hoist accounting).
    gates_at_creation: usize,
}

/// Where [`RoundBackfill::place`] put a hop.
#[derive(Debug, Clone, Copy)]
pub struct Placement {
    /// Index of the chosen round.
    pub round: usize,
    /// `true` when the hop opened a new round (no existing one accepted).
    pub opened: bool,
    /// `true` when the chosen round predates at least one gate noted
    /// after it was opened — the hop was hoisted across that gate.
    pub hoisted: bool,
}

/// The shared first-fit backfill state: rounds, the per-round trap
/// occupancy snapshots, the per-trap arrival indexes, the per-trap gate
/// fences, and the per-ion order fences.
#[derive(Debug, Clone)]
pub struct RoundBackfill {
    rules: BackfillRules,
    cap: u32,
    rounds: Vec<RoundSlot>,
    /// `occ_before[r]` = trap occupancies entering round `r`, with one
    /// extra entry for "after the last round".
    occ_before: Vec<Vec<u32>>,
    /// Rounds with an arrival at each trap, ascending.
    arrival_rounds: Vec<Vec<usize>>,
    /// A hop touching trap `t` may not join a round older than
    /// `min_join[t]` (set by every gate noted in `t`).
    min_join: Vec<usize>,
    last_round_of_ion: HashMap<IonId, usize>,
    gates_noted: usize,
}

impl RoundBackfill {
    /// Starts an empty backfill over `num_traps` traps of capacity `cap`,
    /// seeded with the occupancies `occ0` the first round will see.
    pub fn new(num_traps: usize, cap: u32, occ0: Vec<u32>, rules: BackfillRules) -> Self {
        debug_assert_eq!(occ0.len(), num_traps);
        RoundBackfill {
            rules,
            cap,
            rounds: Vec::new(),
            occ_before: vec![occ0],
            arrival_rounds: vec![Vec::new(); num_traps],
            min_join: vec![0; num_traps],
            last_round_of_ion: HashMap::new(),
            gates_noted: 0,
        }
    }

    /// Notes a gate executing in `trap`: hops touching it may no longer
    /// join any currently-open round, and rounds opened from here on count
    /// as "after this gate" for hoist accounting.
    pub fn note_gate(&mut self, trap: TrapId) {
        self.min_join[trap.index()] = self.rounds.len();
        self.gates_noted += 1;
    }

    /// Capacity credit a same-round departure out of trap `t` grants an
    /// arrival joining round `r`.
    fn credit(&self, r: usize, t: usize) -> u32 {
        match self.rules.credit {
            CreditRule::DepartureCredit => self.rounds[r].departures[t],
            CreditRule::NoCredit => 0,
        }
    }

    /// First-fit places `m` into the earliest legal round, opening a new
    /// one when nothing accepts, and maintains every snapshot and index.
    pub fn place(&mut self, m: ShuttleMove) -> Placement {
        let seg = m.segment();
        let (fi, ti) = (m.from.index(), m.to.index());
        let lo = self.min_join[fi]
            .max(self.min_join[ti])
            .max(self.last_round_of_ion.get(&m.ion).map_or(0, |&r| r + 1))
            .max(self.rounds.len().saturating_sub(self.rules.window));
        let mut chosen = None;
        for r in lo..self.rounds.len() {
            let rb = &self.rounds[r];
            if rb.segments.contains(&seg)
                || rb.departures[fi] > 0
                || rb.arrivals[ti] > 0
                || self.occ_before[r][ti] + 1 > self.cap + self.credit(r, ti)
            {
                continue;
            }
            if self.rules.share_only
                && rb.arrivals[fi] == 0
                && rb.departures[ti] == 0
                && !rb.moves.iter().any(|c| {
                    let (cf, ct) = (c.from.index(), c.to.index());
                    cf == fi || cf == ti || ct == fi || ct == ti
                })
            {
                continue;
            }
            // Downstream: the ion occupies `to` from round r on; later
            // rounds with an arrival there must keep room for their own
            // single arrival (one merge per trap per round) under the
            // credit rule.
            let downstream_ok = self.arrival_rounds[ti]
                .iter()
                .filter(|&&s| s > r)
                .all(|&s| self.occ_before[s][ti] + 2 <= self.cap + self.credit(s, ti));
            if downstream_ok {
                chosen = Some(r);
                break;
            }
        }
        let (chosen, opened) = match chosen {
            Some(r) => (r, false),
            None => {
                let num_traps = self.arrival_rounds.len();
                self.rounds.push(RoundSlot {
                    moves: Vec::new(),
                    segments: Vec::new(),
                    arrivals: vec![0; num_traps],
                    departures: vec![0; num_traps],
                    gates_at_creation: self.gates_noted,
                });
                self.occ_before
                    .push(self.occ_before.last().expect("seeded at new").clone());
                (self.rounds.len() - 1, true)
            }
        };
        let hoisted = self.rounds[chosen].gates_at_creation < self.gates_noted;
        let rb = &mut self.rounds[chosen];
        rb.moves.push(m);
        rb.segments.push(seg);
        rb.departures[fi] += 1;
        rb.arrivals[ti] += 1;
        let list = &mut self.arrival_rounds[ti];
        let pos = list.partition_point(|&s| s < chosen);
        list.insert(pos, chosen);
        for occ in &mut self.occ_before[chosen + 1..] {
            occ[fi] -= 1;
            occ[ti] += 1;
        }
        self.last_round_of_ion.insert(m.ion, chosen);
        BACKFILL_PLACEMENTS.incr();
        if !opened {
            BACKFILL_JOINS.incr();
        }
        if hoisted {
            BACKFILL_HOISTS.incr();
        }
        Placement {
            round: chosen,
            opened,
            hoisted,
        }
    }

    /// The rounds built so far, in order.
    pub fn rounds(&self) -> impl Iterator<Item = &[ShuttleMove]> {
        self.rounds.iter().map(|r| r.moves.as_slice())
    }

    /// Consumes the backfill, returning each round's moves in order.
    pub fn into_rounds(self) -> Vec<Vec<ShuttleMove>> {
        self.rounds.into_iter().map(|r| r.moves).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(ion: u32, from: u32, to: u32) -> ShuttleMove {
        ShuttleMove {
            ion: IonId(ion),
            from: TrapId(from),
            to: TrapId(to),
        }
    }

    fn rules(credit: CreditRule) -> BackfillRules {
        BackfillRules {
            credit,
            share_only: false,
            window: usize::MAX,
        }
    }

    #[test]
    fn credit_rule_splits_full_trap_pipelines() {
        // Trap 1 full (cap 2): ion 1 leaves it while ion 0 enters. With
        // departure credit both share round 0; without, the arrival must
        // wait for round 1.
        for (credit, expect_rounds) in [(CreditRule::DepartureCredit, 1), (CreditRule::NoCredit, 2)]
        {
            let mut bf = RoundBackfill::new(3, 2, vec![1, 2, 1], rules(credit));
            bf.place(mv(1, 1, 2));
            bf.place(mv(0, 0, 1));
            assert_eq!(bf.into_rounds().len(), expect_rounds, "{credit:?}");
        }
    }

    #[test]
    fn gate_fence_blocks_joins_and_marks_hoists() {
        let mut bf = RoundBackfill::new(4, 4, vec![1; 4], rules(CreditRule::NoCredit));
        let p0 = bf.place(mv(0, 0, 1));
        assert!(p0.opened && !p0.hoisted);
        // A gate in trap 3 fences trap 3 but not the 1→2 corridor...
        bf.note_gate(TrapId(3));
        let p1 = bf.place(mv(1, 1, 2));
        assert_eq!(p1.round, 0, "trap-disjoint hop still joins round 0");
        assert!(p1.hoisted, "and counts as hoisted across the gate");
        // ...while a hop touching trap 3 must open a new round.
        let p2 = bf.place(mv(2, 3, 2));
        assert!(p2.opened && !p2.hoisted);
        assert_eq!(p2.round, 1);
    }

    #[test]
    fn per_ion_order_and_segments_are_respected() {
        // Trap 0 holds both ions 0 and 3.
        let mut bf = RoundBackfill::new(4, 4, vec![2, 1, 1, 1], rules(CreditRule::DepartureCredit));
        assert_eq!(bf.place(mv(0, 0, 1)).round, 0);
        // Same ion again: strictly after its previous round.
        assert_eq!(bf.place(mv(0, 1, 2)).round, 1);
        // Same segment as round 0: also pushed later.
        assert_eq!(bf.place(mv(3, 0, 1)).round, 1);
        assert_eq!(bf.rounds().count(), 2);
    }

    #[test]
    fn window_bounds_the_scan() {
        let mut bf = RoundBackfill::new(
            4,
            4,
            vec![1; 4],
            BackfillRules {
                credit: CreditRule::NoCredit,
                share_only: false,
                window: 1,
            },
        );
        bf.place(mv(0, 0, 1));
        bf.place(mv(0, 1, 0)); // round 1 (per-ion order)
                               // 2→3 would fit round 0, but the window only reaches round 1,
                               // where it also fits.
        let p = bf.place(mv(2, 2, 3));
        assert_eq!(p.round, 1);
    }
}
