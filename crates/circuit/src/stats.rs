//! Circuit statistics: interaction graph and locality metrics.
//!
//! Used by the greedy initial-mapping policy (interaction weights) and by
//! the evaluation harness to characterise benchmark gate patterns the way
//! §IV-B of the paper does (nearest-neighbour vs all-to-all vs mixed).

use crate::circuit::Circuit;
use crate::gate::Qubit;
use std::collections::HashMap;

/// Weighted qubit-interaction graph: how many two-qubit gates touch each
/// unordered qubit pair.
#[derive(Debug, Clone, Default)]
pub struct InteractionGraph {
    weights: HashMap<(Qubit, Qubit), u32>,
    num_qubits: u32,
}

impl InteractionGraph {
    /// Builds the interaction graph of `circuit`.
    pub fn build(circuit: &Circuit) -> Self {
        let mut weights = HashMap::new();
        for g in circuit.gates() {
            if let Some((a, b)) = g.two_qubit_operands() {
                let key = normalize(a, b);
                *weights.entry(key).or_insert(0) += 1;
            }
        }
        InteractionGraph {
            weights,
            num_qubits: circuit.num_qubits(),
        }
    }

    /// Number of qubits in the underlying circuit.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Interaction weight (gate count) between `a` and `b`.
    pub fn weight(&self, a: Qubit, b: Qubit) -> u32 {
        if a == b {
            return 0;
        }
        self.weights.get(&normalize(a, b)).copied().unwrap_or(0)
    }

    /// Number of distinct interacting pairs.
    pub fn edge_count(&self) -> usize {
        self.weights.len()
    }

    /// Iterates over `((a, b), weight)` for every interacting pair.
    pub fn iter(&self) -> impl Iterator<Item = ((Qubit, Qubit), u32)> + '_ {
        self.weights.iter().map(|(&k, &w)| (k, w))
    }

    /// Total interaction weight incident to `q`.
    pub fn degree_weight(&self, q: Qubit) -> u32 {
        self.weights
            .iter()
            .filter(|((a, b), _)| *a == q || *b == q)
            .map(|(_, w)| *w)
            .sum()
    }

    /// Density: distinct interacting pairs / all possible pairs, in `[0, 1]`.
    /// All-to-all circuits (QFT) approach 1; grid circuits stay near
    /// `2/num_qubits`.
    pub fn density(&self) -> f64 {
        if self.num_qubits < 2 {
            return 0.0;
        }
        let possible = (self.num_qubits as f64) * (self.num_qubits as f64 - 1.0) / 2.0;
        self.weights.len() as f64 / possible
    }
}

fn normalize(a: Qubit, b: Qubit) -> (Qubit, Qubit) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Summary statistics of a circuit's gate pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Register size.
    pub num_qubits: u32,
    /// Total gate count.
    pub total_gates: usize,
    /// Two-qubit gate count (what the paper's tables report).
    pub two_qubit_gates: usize,
    /// DAG depth in layers.
    pub depth: u32,
    /// Interaction-graph density in `[0, 1]`.
    pub interaction_density: f64,
    /// Mean index distance `|i − j|` over two-qubit gates — a proxy for
    /// how "long range" the pattern is under a linear qubit layout.
    pub mean_gate_range: f64,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    pub fn compute(circuit: &Circuit) -> Self {
        let graph = InteractionGraph::build(circuit);
        let dag = circuit.dependency_dag();
        let (mut range_sum, mut count) = (0u64, 0u64);
        for g in circuit.gates() {
            if let Some((a, b)) = g.two_qubit_operands() {
                range_sum += u64::from(a.0.abs_diff(b.0));
                count += 1;
            }
        }
        CircuitStats {
            num_qubits: circuit.num_qubits(),
            total_gates: circuit.len(),
            two_qubit_gates: count as usize,
            depth: dag.layer_count(),
            interaction_density: graph.density(),
            mean_gate_range: if count == 0 {
                0.0
            } else {
                range_sum as f64 / count as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Opcode;
    use crate::generators::{qft, supremacy};

    #[test]
    fn weights_accumulate() {
        let mut c = Circuit::new(3);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(0)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let g = InteractionGraph::build(&c);
        assert_eq!(g.weight(Qubit(0), Qubit(1)), 2);
        assert_eq!(g.weight(Qubit(1), Qubit(0)), 2); // symmetric
        assert_eq!(g.weight(Qubit(0), Qubit(2)), 0);
        assert_eq!(g.weight(Qubit(1), Qubit(1)), 0); // self weight is 0
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree_weight(Qubit(1)), 3);
    }

    #[test]
    fn qft_is_denser_than_supremacy() {
        let dense = CircuitStats::compute(&qft(16));
        let sparse = CircuitStats::compute(&supremacy(4, 4, 8));
        assert!(dense.interaction_density > 0.99);
        assert!(sparse.interaction_density < 0.25);
        assert!(dense.mean_gate_range > sparse.mean_gate_range);
    }

    #[test]
    fn stats_on_empty_circuit() {
        let s = CircuitStats::compute(&Circuit::new(4));
        assert_eq!(s.two_qubit_gates, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.mean_gate_range, 0.0);
    }

    #[test]
    fn density_single_qubit_is_zero() {
        let g = InteractionGraph::build(&Circuit::new(1));
        assert_eq!(g.density(), 0.0);
    }
}
