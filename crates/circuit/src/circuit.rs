//! The [`Circuit`] container: an ordered, validated gate sequence.

use crate::dag::DependencyDag;
use crate::error::CircuitError;
use crate::gate::{Gate, GateId, GateQubits, Opcode, Qubit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered sequence of quantum gates over a fixed qubit register.
///
/// All gates are validated on insertion: operand qubits must be in range and
/// distinct. The circuit is append-only; gate ids are stable program-order
/// positions.
///
/// # Example
///
/// ```
/// use qccd_circuit::{Circuit, Opcode, Qubit};
///
/// # fn main() -> Result<(), qccd_circuit::CircuitError> {
/// let mut c = Circuit::new(3);
/// c.push_single_qubit(Opcode::H, Qubit(0))?;
/// c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1))?;
/// assert_eq!(c.len(), 2);
/// assert_eq!(c.two_qubit_gate_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: u32,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: u32) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Creates an empty circuit with gate capacity pre-allocated.
    pub fn with_capacity(num_qubits: u32, gates: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::with_capacity(gates),
        }
    }

    /// The size of the qubit register.
    pub fn num_qubits(&self) -> u32 {
        self.num_qubits
    }

    /// Total number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit holds no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of two-qubit gates (the quantity the paper's tables report).
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// The gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Looks up a gate by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Appends a validated single-qubit gate, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if `q` is outside the
    /// register, [`CircuitError::ArityMismatch`] if `opcode` is not a
    /// single-qubit opcode, or [`CircuitError::TooManyGates`] on overflow.
    pub fn push_single_qubit(&mut self, opcode: Opcode, q: Qubit) -> Result<GateId, CircuitError> {
        if opcode.arity() != 1 {
            return Err(CircuitError::ArityMismatch {
                gate: GateId(self.gates.len() as u32),
                supplied: 1,
                required: opcode.arity(),
            });
        }
        self.check_qubit(q)?;
        self.push_unchecked(opcode, GateQubits::One(q))
    }

    /// Appends a validated two-qubit gate, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if an operand is outside the
    /// register, [`CircuitError::DuplicateOperand`] if `a == b`,
    /// [`CircuitError::ArityMismatch`] if `opcode` is not a two-qubit opcode,
    /// or [`CircuitError::TooManyGates`] on overflow.
    pub fn push_two_qubit(
        &mut self,
        opcode: Opcode,
        a: Qubit,
        b: Qubit,
    ) -> Result<GateId, CircuitError> {
        if opcode.arity() != 2 {
            return Err(CircuitError::ArityMismatch {
                gate: GateId(self.gates.len() as u32),
                supplied: 2,
                required: opcode.arity(),
            });
        }
        self.check_qubit(a)?;
        self.check_qubit(b)?;
        if a == b {
            return Err(CircuitError::DuplicateOperand { qubit: a });
        }
        self.push_unchecked(opcode, GateQubits::Two(a, b))
    }

    fn push_unchecked(
        &mut self,
        opcode: Opcode,
        qubits: GateQubits,
    ) -> Result<GateId, CircuitError> {
        let raw = u32::try_from(self.gates.len()).map_err(|_| CircuitError::TooManyGates)?;
        if raw == u32::MAX {
            return Err(CircuitError::TooManyGates);
        }
        let id = GateId(raw);
        self.gates.push(Gate { id, opcode, qubits });
        Ok(id)
    }

    fn check_qubit(&self, q: Qubit) -> Result<(), CircuitError> {
        if q.0 >= self.num_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit: q,
                num_qubits: self.num_qubits,
            });
        }
        Ok(())
    }

    /// Builds the gate-dependency DAG (§II-A of the paper) for this circuit.
    pub fn dependency_dag(&self) -> DependencyDag {
        DependencyDag::build(self)
    }

    /// Renders the circuit in the paper's text format, one gate per line.
    pub fn to_program_text(&self) -> String {
        let mut s = String::with_capacity(self.gates.len() * 16);
        for g in &self.gates {
            s.push_str(&g.to_string());
            s.push('\n');
        }
        s
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "circuit({} qubits, {} gates, {} two-qubit)",
            self.num_qubits,
            self.gates.len(),
            self.two_qubit_gate_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_query() {
        let mut c = Circuit::new(6);
        let g0 = c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        let g1 = c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        assert_eq!(g0, GateId(0));
        assert_eq!(g1, GateId(1));
        assert_eq!(c.len(), 2);
        assert_eq!(c.gate(g1).two_qubit_operands(), Some((Qubit(2), Qubit(3))));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut c = Circuit::new(2);
        let err = c
            .push_two_qubit(Opcode::Ms, Qubit(0), Qubit(5))
            .unwrap_err();
        assert_eq!(
            err,
            CircuitError::QubitOutOfRange {
                qubit: Qubit(5),
                num_qubits: 2
            }
        );
    }

    #[test]
    fn rejects_duplicate_operand() {
        let mut c = Circuit::new(2);
        let err = c
            .push_two_qubit(Opcode::Ms, Qubit(1), Qubit(1))
            .unwrap_err();
        assert_eq!(err, CircuitError::DuplicateOperand { qubit: Qubit(1) });
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut c = Circuit::new(2);
        assert!(matches!(
            c.push_single_qubit(Opcode::Ms, Qubit(0)),
            Err(CircuitError::ArityMismatch { .. })
        ));
        assert!(matches!(
            c.push_two_qubit(Opcode::H, Qubit(0), Qubit(1)),
            Err(CircuitError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn two_qubit_count_ignores_single_qubit_gates() {
        let mut c = Circuit::new(2);
        c.push_single_qubit(Opcode::H, Qubit(0)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_single_qubit(Opcode::Measure, Qubit(1)).unwrap();
        assert_eq!(c.two_qubit_gate_count(), 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn program_text_round_trips_via_parser() {
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_single_qubit(Opcode::H, Qubit(2)).unwrap();
        c.push_two_qubit(Opcode::Zz, Qubit(2), Qubit(3)).unwrap();
        let text = c.to_program_text();
        let parsed = crate::parser::parse_program(&text, 4).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn display_summarises() {
        let mut c = Circuit::new(2);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        assert_eq!(c.to_string(), "circuit(2 qubits, 1 gates, 1 two-qubit)");
    }
}
