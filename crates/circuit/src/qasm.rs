//! OpenQASM 2.0 export, so circuits built or generated here can be fed to
//! mainstream toolchains (Qiskit, tket, …) for cross-checking.
//!
//! Gate mapping:
//!
//! | Opcode | QASM emission |
//! |---|---|
//! | `Ms` | `rxx(pi/2) a, b;` (the Mølmer–Sørensen interaction) |
//! | `Zz` | `rzz(pi/2) a, b;` |
//! | `Cphase` | `cp(pi/4) a, b;` |
//! | `H`/`X` | `h q;` / `x q;` |
//! | `Rx`/`Ry`/`Rz` | `rx(pi/2) q;` etc. (angles are not tracked by this IR; a representative angle is emitted) |
//! | `Measure` | `measure q -> c;` |
//!
//! The shuttle compiler never inspects angles — only which qubits must be
//! co-located — so the IR stores none; exported angles are placeholders and
//! noted in the file header.

use crate::circuit::Circuit;
use crate::gate::{GateQubits, Opcode};
use std::fmt::Write as _;

/// Renders `circuit` as an OpenQASM 2.0 program.
///
/// # Example
///
/// ```
/// use qccd_circuit::{qasm::to_qasm, Circuit, Opcode, Qubit};
///
/// # fn main() -> Result<(), qccd_circuit::CircuitError> {
/// let mut c = Circuit::new(2);
/// c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1))?;
/// let text = to_qasm(&c);
/// assert!(text.contains("rxx(pi/2) q[0], q[1];"));
/// # Ok(())
/// # }
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let n = circuit.num_qubits();
    let mut out = String::with_capacity(64 + circuit.len() * 24);
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    out.push_str(
        "// exported by muzzle-shuttle; rotation angles are representative placeholders\n",
    );
    let _ = writeln!(out, "qreg q[{n}];");
    let has_measure = circuit.gates().iter().any(|g| g.opcode == Opcode::Measure);
    if has_measure {
        let _ = writeln!(out, "creg c[{n}];");
    }
    for gate in circuit.gates() {
        match (gate.opcode, gate.qubits) {
            (Opcode::Ms, GateQubits::Two(a, b)) => {
                let _ = writeln!(out, "rxx(pi/2) q[{}], q[{}];", a.0, b.0);
            }
            (Opcode::Zz, GateQubits::Two(a, b)) => {
                let _ = writeln!(out, "rzz(pi/2) q[{}], q[{}];", a.0, b.0);
            }
            (Opcode::Cphase, GateQubits::Two(a, b)) => {
                let _ = writeln!(out, "cp(pi/4) q[{}], q[{}];", a.0, b.0);
            }
            (Opcode::H, GateQubits::One(q)) => {
                let _ = writeln!(out, "h q[{}];", q.0);
            }
            (Opcode::X, GateQubits::One(q)) => {
                let _ = writeln!(out, "x q[{}];", q.0);
            }
            (Opcode::Rx, GateQubits::One(q)) => {
                let _ = writeln!(out, "rx(pi/2) q[{}];", q.0);
            }
            (Opcode::Ry, GateQubits::One(q)) => {
                let _ = writeln!(out, "ry(pi/2) q[{}];", q.0);
            }
            (Opcode::Rz, GateQubits::One(q)) => {
                let _ = writeln!(out, "rz(pi/2) q[{}];", q.0);
            }
            (Opcode::Measure, GateQubits::One(q)) => {
                let _ = writeln!(out, "measure q[{0}] -> c[{0}];", q.0);
            }
            // Arity is validated at construction; these cannot occur.
            (op, qubits) => unreachable!("opcode {op} with operands {qubits:?}"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Qubit;
    use crate::generators::qft;

    #[test]
    fn header_and_register() {
        let c = Circuit::new(5);
        let q = to_qasm(&c);
        assert!(q.starts_with("OPENQASM 2.0;\n"));
        assert!(q.contains("qreg q[5];"));
        assert!(!q.contains("creg"), "no measure, no classical register");
    }

    #[test]
    fn all_opcodes_emit() {
        let mut c = Circuit::new(3);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_two_qubit(Opcode::Zz, Qubit(1), Qubit(2)).unwrap();
        c.push_two_qubit(Opcode::Cphase, Qubit(0), Qubit(2))
            .unwrap();
        for (op, q) in [
            (Opcode::H, 0),
            (Opcode::X, 1),
            (Opcode::Rx, 2),
            (Opcode::Ry, 0),
            (Opcode::Rz, 1),
            (Opcode::Measure, 2),
        ] {
            c.push_single_qubit(op, Qubit(q)).unwrap();
        }
        let q = to_qasm(&c);
        for needle in [
            "rxx(pi/2) q[0], q[1];",
            "rzz(pi/2) q[1], q[2];",
            "cp(pi/4) q[0], q[2];",
            "h q[0];",
            "x q[1];",
            "rx(pi/2) q[2];",
            "ry(pi/2) q[0];",
            "rz(pi/2) q[1];",
            "measure q[2] -> c[2];",
            "creg c[3];",
        ] {
            assert!(q.contains(needle), "missing {needle:?} in:\n{q}");
        }
    }

    #[test]
    fn line_count_matches_gates() {
        let c = qft(8);
        let q = to_qasm(&c);
        let body_lines = q.lines().filter(|l| l.ends_with(';')).count();
        // OPENQASM + include + qreg + one line per gate.
        assert_eq!(body_lines, 3 + c.len());
    }
}
