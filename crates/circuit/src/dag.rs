//! Gate-dependency DAG (§II-A of the paper, Fig. 2).
//!
//! Gates in a layer are mutually independent; every gate depends on one or
//! more gates from previous layers (specifically, on the last earlier gate
//! touching each of its operand qubits).

use crate::circuit::Circuit;
use crate::gate::GateId;
use serde::{Deserialize, Serialize};

/// The dependency graph of a circuit: per-gate predecessors/successors plus
/// the layer structure of Fig. 2b in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependencyDag {
    /// `preds[g]` = gates that must execute before gate `g`.
    preds: Vec<Vec<GateId>>,
    /// `succs[g]` = gates that directly depend on gate `g`.
    succs: Vec<Vec<GateId>>,
    /// `layer[g]` = 0-based layer of gate `g` (longest-path depth).
    layer: Vec<u32>,
    /// Number of layers (circuit depth in gates).
    layer_count: u32,
}

impl DependencyDag {
    /// Builds the DAG for `circuit`.
    ///
    /// Dependencies are qubit-carried: gate `g` depends on the most recent
    /// earlier gate acting on each of `g`'s qubits. The layer of a gate is
    /// `1 + max(layer of predecessors)` (0 for sources), exactly the layered
    /// view the paper draws in Fig. 2b.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut preds: Vec<Vec<GateId>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<GateId>> = vec![Vec::new(); n];
        let mut layer: Vec<u32> = vec![0; n];
        // Last gate that touched each qubit, if any.
        let mut last_on_qubit: Vec<Option<GateId>> = vec![None; circuit.num_qubits() as usize];
        let mut layer_count = 0u32;

        for gate in circuit.gates() {
            let gi = gate.id.index();
            for q in gate.qubits.iter() {
                if let Some(prev) = last_on_qubit[q.index()] {
                    // Avoid duplicate edges when both operands were last
                    // touched by the same gate.
                    if !preds[gi].contains(&prev) {
                        preds[gi].push(prev);
                        succs[prev.index()].push(gate.id);
                    }
                    let candidate = layer[prev.index()] + 1;
                    if candidate > layer[gi] {
                        layer[gi] = candidate;
                    }
                }
                last_on_qubit[q.index()] = Some(gate.id);
            }
            if !circuit.gates().is_empty() {
                layer_count = layer_count.max(layer[gi] + 1);
            }
        }

        DependencyDag {
            preds,
            succs,
            layer,
            layer_count,
        }
    }

    /// Number of gates in the DAG.
    pub fn len(&self) -> usize {
        self.layer.len()
    }

    /// Returns `true` if the DAG has no gates.
    pub fn is_empty(&self) -> bool {
        self.layer.is_empty()
    }

    /// Number of layers (0 for an empty circuit).
    pub fn layer_count(&self) -> u32 {
        self.layer_count
    }

    /// The 0-based layer of a gate.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a gate of the underlying circuit.
    pub fn layer_of(&self, g: GateId) -> u32 {
        self.layer[g.index()]
    }

    /// Direct predecessors of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a gate of the underlying circuit.
    pub fn predecessors(&self, g: GateId) -> &[GateId] {
        &self.preds[g.index()]
    }

    /// Direct successors of `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not a gate of the underlying circuit.
    pub fn successors(&self, g: GateId) -> &[GateId] {
        &self.succs[g.index()]
    }

    /// Gates grouped by layer, each layer in ascending gate order.
    pub fn layers(&self) -> Vec<Vec<GateId>> {
        let mut out = vec![Vec::new(); self.layer_count as usize];
        for (i, &l) in self.layer.iter().enumerate() {
            out[l as usize].push(GateId(i as u32));
        }
        out
    }

    /// A topological order of all gates: by layer, then by gate id.
    ///
    /// This is the paper's "earliest-ready-gate-first" baseline execution
    /// order (§III-B): topologically sorted, breaking ties by program order.
    pub fn topological_order(&self) -> Vec<GateId> {
        let mut order: Vec<GateId> = (0..self.layer.len() as u32).map(GateId).collect();
        order.sort_by_key(|g| (self.layer[g.index()], g.0));
        order
    }

    /// Creates a [`ReadySet`] tracker for incremental scheduling over this DAG.
    pub fn ready_set(&self) -> ReadySet {
        ReadySet::new(self)
    }

    /// Verifies that `order` is a valid topological execution order covering
    /// every gate exactly once. Used by tests and the schedule validator.
    pub fn is_valid_execution_order(&self, order: &[GateId]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut position = vec![usize::MAX; self.len()];
        for (i, g) in order.iter().enumerate() {
            if g.index() >= self.len() || position[g.index()] != usize::MAX {
                return false;
            }
            position[g.index()] = i;
        }
        for (gi, preds) in self.preds.iter().enumerate() {
            for p in preds {
                if position[p.index()] >= position[gi] {
                    return false;
                }
            }
        }
        true
    }
}

/// Incremental ready-gate tracker (Kahn's algorithm state).
///
/// The compiler's scheduling loop marks gates done one at a time; `ReadySet`
/// maintains which gates have all predecessors satisfied.
#[derive(Debug, Clone)]
pub struct ReadySet {
    indegree: Vec<u32>,
    done: Vec<bool>,
    remaining: usize,
}

impl ReadySet {
    fn new(dag: &DependencyDag) -> Self {
        let mut indegree = vec![0u32; dag.len()];
        for (gi, preds) in dag.preds.iter().enumerate() {
            indegree[gi] = preds.len() as u32;
        }
        ReadySet {
            indegree,
            done: vec![false; dag.len()],
            remaining: dag.len(),
        }
    }

    /// Returns `true` if `g` has not yet been marked done but all its
    /// predecessors have.
    pub fn is_ready(&self, g: GateId) -> bool {
        !self.done[g.index()] && self.indegree[g.index()] == 0
    }

    /// Returns `true` if `g` has been marked done.
    pub fn is_done(&self, g: GateId) -> bool {
        self.done[g.index()]
    }

    /// Number of gates not yet marked done.
    pub fn remaining(&self) -> usize {
        self.remaining
    }

    /// Returns `true` once every gate has been marked done.
    pub fn all_done(&self) -> bool {
        self.remaining == 0
    }

    /// Marks `g` executed, unlocking its successors.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not ready (predecessors unfinished or already done) —
    /// this always indicates a scheduler bug, never user input.
    pub fn mark_done(&mut self, dag: &DependencyDag, g: GateId) {
        assert!(
            self.is_ready(g),
            "gate {g} marked done while not ready (scheduler invariant violation)"
        );
        self.done[g.index()] = true;
        self.remaining -= 1;
        for s in dag.successors(g) {
            self.indegree[s.index()] -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{Opcode, Qubit};

    /// The 9-gate sample program from Fig. 2a of the paper.
    fn paper_fig2_circuit() -> Circuit {
        let pairs = [
            (0, 1), // g1
            (2, 3), // g2
            (2, 0), // g3
            (4, 5), // g4
            (0, 3), // g5
            (2, 5), // g6
            (4, 5), // g7
            (0, 1), // g8
            (2, 3), // g9
        ];
        let mut c = Circuit::new(6);
        for (a, b) in pairs {
            c.push_two_qubit(Opcode::Ms, Qubit(a), Qubit(b)).unwrap();
        }
        c
    }

    #[test]
    fn fig2_layer_structure_matches_paper() {
        // Paper Fig. 2b: L0 = {g1, g2, g4}; L1 = {g3}; L2 = {g5, g6};
        // L3 = {g7, g8, g9}. Our ids are 0-based (g1 -> GateId(0)).
        let dag = paper_fig2_circuit().dependency_dag();
        assert_eq!(dag.layer_count(), 4);
        let layers = dag.layers();
        assert_eq!(layers[0], vec![GateId(0), GateId(1), GateId(3)]);
        assert_eq!(layers[1], vec![GateId(2)]);
        assert_eq!(layers[2], vec![GateId(4), GateId(5)]);
        assert_eq!(layers[3], vec![GateId(6), GateId(7), GateId(8)]);
    }

    #[test]
    fn fig2_dependencies() {
        let dag = paper_fig2_circuit().dependency_dag();
        // g5 (id 4) and g6 (id 5) both depend on g3 (id 2).
        assert!(dag.predecessors(GateId(4)).contains(&GateId(2)));
        assert!(dag.predecessors(GateId(5)).contains(&GateId(2)));
        // g3 depends on g1 and g2 (order follows operand order: q2 then q0).
        let mut preds = dag.predecessors(GateId(2)).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![GateId(0), GateId(1)]);
    }

    #[test]
    fn topological_order_is_valid_and_layer_sorted() {
        let dag = paper_fig2_circuit().dependency_dag();
        let order = dag.topological_order();
        assert!(dag.is_valid_execution_order(&order));
        for w in order.windows(2) {
            assert!(dag.layer_of(w[0]) <= dag.layer_of(w[1]));
        }
    }

    #[test]
    fn paper_fig2c_order_is_valid() {
        // Fig. 2c: g2 g1 g4 g3 g5 g6 g8 g9 g7 (1-based names).
        let dag = paper_fig2_circuit().dependency_dag();
        let order: Vec<GateId> = [1, 0, 3, 2, 4, 5, 7, 8, 6]
            .into_iter()
            .map(GateId)
            .collect();
        assert!(dag.is_valid_execution_order(&order));
    }

    #[test]
    fn invalid_orders_rejected() {
        let dag = paper_fig2_circuit().dependency_dag();
        // g3 before its predecessor g1.
        let order: Vec<GateId> = [2, 0, 1, 3, 4, 5, 6, 7, 8]
            .into_iter()
            .map(GateId)
            .collect();
        assert!(!dag.is_valid_execution_order(&order));
        // Wrong length.
        assert!(!dag.is_valid_execution_order(&[GateId(0)]));
        // Duplicate gate.
        let order: Vec<GateId> = [0, 0, 1, 3, 2, 4, 5, 6, 7]
            .into_iter()
            .map(GateId)
            .collect();
        assert!(!dag.is_valid_execution_order(&order));
    }

    #[test]
    fn ready_set_tracks_dependencies() {
        let dag = paper_fig2_circuit().dependency_dag();
        let mut ready = dag.ready_set();
        assert!(ready.is_ready(GateId(0)));
        assert!(ready.is_ready(GateId(1)));
        assert!(!ready.is_ready(GateId(2))); // g3 blocked by g1, g2
        ready.mark_done(&dag, GateId(0));
        assert!(!ready.is_ready(GateId(2)));
        ready.mark_done(&dag, GateId(1));
        assert!(ready.is_ready(GateId(2)));
        assert_eq!(ready.remaining(), 7);
        assert!(!ready.all_done());
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn ready_set_rejects_premature_done() {
        let dag = paper_fig2_circuit().dependency_dag();
        let mut ready = dag.ready_set();
        ready.mark_done(&dag, GateId(2));
    }

    #[test]
    fn empty_circuit_dag() {
        let dag = Circuit::new(3).dependency_dag();
        assert_eq!(dag.layer_count(), 0);
        assert!(dag.is_empty());
        assert!(dag.topological_order().is_empty());
        assert!(dag.is_valid_execution_order(&[]));
    }

    #[test]
    fn single_qubit_gates_chain_dependencies() {
        let mut c = Circuit::new(1);
        c.push_single_qubit(Opcode::H, Qubit(0)).unwrap();
        c.push_single_qubit(Opcode::Rz, Qubit(0)).unwrap();
        c.push_single_qubit(Opcode::H, Qubit(0)).unwrap();
        let dag = c.dependency_dag();
        assert_eq!(dag.layer_count(), 3);
        assert_eq!(dag.predecessors(GateId(2)), &[GateId(1)]);
    }

    #[test]
    fn shared_pred_not_duplicated() {
        // Gate 1 shares BOTH qubits with gate 0 — the edge must appear once.
        let mut c = Circuit::new(2);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(0)).unwrap();
        let dag = c.dependency_dag();
        assert_eq!(dag.predecessors(GateId(1)), &[GateId(0)]);
        assert_eq!(dag.successors(GateId(0)), &[GateId(1)]);
    }
}
