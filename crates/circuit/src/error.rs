//! Error types for circuit construction and parsing.

use crate::gate::{GateId, Qubit};
use std::error::Error;
use std::fmt;

/// Errors raised while building or validating a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// A gate referenced a qubit index `qubit` outside `0..num_qubits`.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: Qubit,
        /// The circuit's qubit count.
        num_qubits: u32,
    },
    /// A two-qubit gate used the same qubit for both operands.
    DuplicateOperand {
        /// The repeated qubit.
        qubit: Qubit,
    },
    /// An opcode was used with the wrong number of operands.
    ArityMismatch {
        /// The gate in question.
        gate: GateId,
        /// Operands supplied.
        supplied: usize,
        /// Operands the opcode requires.
        required: usize,
    },
    /// The circuit would exceed `u32::MAX` gates.
    TooManyGates,
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "qubit {qubit} out of range for circuit with {num_qubits} qubits"
            ),
            CircuitError::DuplicateOperand { qubit } => {
                write!(f, "two-qubit gate uses {qubit} for both operands")
            }
            CircuitError::ArityMismatch {
                gate,
                supplied,
                required,
            } => write!(
                f,
                "gate {gate} supplied {supplied} operands but opcode requires {required}"
            ),
            CircuitError::TooManyGates => write!(f, "circuit exceeds the maximum gate count"),
        }
    }
}

impl Error for CircuitError {}

/// Errors raised while parsing the text program format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseProgramError {
    /// A line could not be tokenised as `OP q[i];` or `OP q[i], q[j];`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The mnemonic on a line is not a known [`Opcode`](crate::Opcode).
    UnknownOpcode {
        /// 1-based line number.
        line: usize,
        /// The unknown mnemonic.
        mnemonic: String,
    },
    /// The parsed gate failed circuit validation.
    Invalid {
        /// 1-based line number.
        line: usize,
        /// The underlying circuit error.
        source: CircuitError,
    },
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseProgramError::Malformed { line, text } => {
                write!(f, "line {line}: malformed statement `{text}`")
            }
            ParseProgramError::UnknownOpcode { line, mnemonic } => {
                write!(f, "line {line}: unknown opcode `{mnemonic}`")
            }
            ParseProgramError::Invalid { line, source } => {
                write!(f, "line {line}: invalid gate: {source}")
            }
        }
    }
}

impl Error for ParseProgramError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseProgramError::Invalid { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CircuitError::QubitOutOfRange {
            qubit: Qubit(9),
            num_qubits: 4,
        };
        assert_eq!(
            e.to_string(),
            "qubit q[9] out of range for circuit with 4 qubits"
        );
        let e = CircuitError::DuplicateOperand { qubit: Qubit(1) };
        assert!(e.to_string().contains("both operands"));
    }

    #[test]
    fn parse_error_exposes_source() {
        let e = ParseProgramError::Invalid {
            line: 3,
            source: CircuitError::TooManyGates,
        };
        assert!(e.source().is_some());
        assert!(e.to_string().starts_with("line 3"));
    }
}
