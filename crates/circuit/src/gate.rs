//! Gate-level vocabulary: qubits, opcodes, gates.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A logical qubit index within a [`Circuit`](crate::Circuit).
///
/// In the trapped-ion machine model each logical qubit is carried by exactly
/// one physical ion, so the compiler uses the same index space for qubits and
/// ions (`qccd_machine::IonId` wraps the same integer).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Qubit(pub u32);

impl Qubit {
    /// Returns the raw index as a `usize`, convenient for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q[{}]", self.0)
    }
}

impl From<u32> for Qubit {
    fn from(v: u32) -> Self {
        Qubit(v)
    }
}

/// A gate's position in its circuit (0-based program order).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct GateId(pub u32);

impl GateId {
    /// Returns the raw index as a `usize`, convenient for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// The operation a gate performs.
///
/// The shuttle compiler only cares about gate *arity* (which qubits must be
/// co-located), but keeping the opcode allows faithful round-tripping of
/// programs and lets the simulator assign per-opcode durations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    /// Mølmer–Sørensen two-qubit entangling gate (the native trapped-ion 2q gate).
    Ms,
    /// Ising-type ZZ interaction (QAOA cost layers compile to this).
    Zz,
    /// Controlled-phase rotation (QFT building block).
    Cphase,
    /// Hadamard.
    H,
    /// X-axis rotation.
    Rx,
    /// Y-axis rotation.
    Ry,
    /// Z-axis rotation.
    Rz,
    /// Pauli-X.
    X,
    /// Computational-basis measurement.
    Measure,
}

impl Opcode {
    /// Number of qubits this opcode acts on.
    pub fn arity(self) -> usize {
        match self {
            Opcode::Ms | Opcode::Zz | Opcode::Cphase => 2,
            _ => 1,
        }
    }

    /// The canonical text-format mnemonic (upper case, as in the paper's listings).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Ms => "MS",
            Opcode::Zz => "ZZ",
            Opcode::Cphase => "CP",
            Opcode::H => "H",
            Opcode::Rx => "RX",
            Opcode::Ry => "RY",
            Opcode::Rz => "RZ",
            Opcode::X => "X",
            Opcode::Measure => "MEASURE",
        }
    }

    /// Parses a mnemonic (case-insensitive). Returns `None` for unknown names.
    pub fn from_mnemonic(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "MS" => Some(Opcode::Ms),
            "ZZ" => Some(Opcode::Zz),
            "CP" | "CPHASE" => Some(Opcode::Cphase),
            "H" => Some(Opcode::H),
            "RX" => Some(Opcode::Rx),
            "RY" => Some(Opcode::Ry),
            "RZ" => Some(Opcode::Rz),
            "X" => Some(Opcode::X),
            "MEASURE" | "M" => Some(Opcode::Measure),
            _ => None,
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The qubit operands of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateQubits {
    /// A single-qubit gate operand.
    One(Qubit),
    /// A two-qubit gate operand pair, in program order.
    Two(Qubit, Qubit),
}

impl GateQubits {
    /// Iterates over the operand qubits in program order.
    pub fn iter(&self) -> impl Iterator<Item = Qubit> + '_ {
        let (a, b) = match *self {
            GateQubits::One(q) => (q, None),
            GateQubits::Two(q, r) => (q, Some(r)),
        };
        std::iter::once(a).chain(b)
    }

    /// Returns `true` if `q` is one of the operands.
    pub fn contains(&self, q: Qubit) -> bool {
        match *self {
            GateQubits::One(a) => a == q,
            GateQubits::Two(a, b) => a == q || b == q,
        }
    }

    /// For a two-qubit gate containing `q`, returns the other operand.
    pub fn partner_of(&self, q: Qubit) -> Option<Qubit> {
        match *self {
            GateQubits::Two(a, b) if a == q => Some(b),
            GateQubits::Two(a, b) if b == q => Some(a),
            _ => None,
        }
    }
}

/// A single gate instance inside a circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Gate {
    /// Position of this gate in the circuit's program order.
    pub id: GateId,
    /// What operation is applied.
    pub opcode: Opcode,
    /// Which qubits it acts on.
    pub qubits: GateQubits,
}

impl Gate {
    /// Returns `true` if this gate acts on two qubits.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self.qubits, GateQubits::Two(_, _))
    }

    /// For a two-qubit gate, returns `(first, second)` operands in program order.
    pub fn two_qubit_operands(&self) -> Option<(Qubit, Qubit)> {
        match self.qubits {
            GateQubits::Two(a, b) => Some((a, b)),
            GateQubits::One(_) => None,
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.qubits {
            GateQubits::One(q) => write!(f, "{} {};", self.opcode, q),
            GateQubits::Two(a, b) => write!(f, "{} {}, {};", self.opcode, a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_display_matches_paper_syntax() {
        assert_eq!(Qubit(3).to_string(), "q[3]");
    }

    #[test]
    fn opcode_arity() {
        assert_eq!(Opcode::Ms.arity(), 2);
        assert_eq!(Opcode::Zz.arity(), 2);
        assert_eq!(Opcode::Cphase.arity(), 2);
        assert_eq!(Opcode::H.arity(), 1);
        assert_eq!(Opcode::Measure.arity(), 1);
    }

    #[test]
    fn opcode_mnemonic_round_trip() {
        for op in [
            Opcode::Ms,
            Opcode::Zz,
            Opcode::Cphase,
            Opcode::H,
            Opcode::Rx,
            Opcode::Ry,
            Opcode::Rz,
            Opcode::X,
            Opcode::Measure,
        ] {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("nope"), None);
    }

    #[test]
    fn gate_qubits_partner() {
        let gq = GateQubits::Two(Qubit(1), Qubit(5));
        assert_eq!(gq.partner_of(Qubit(1)), Some(Qubit(5)));
        assert_eq!(gq.partner_of(Qubit(5)), Some(Qubit(1)));
        assert_eq!(gq.partner_of(Qubit(2)), None);
        assert!(gq.contains(Qubit(5)));
        assert!(!gq.contains(Qubit(0)));
        assert_eq!(GateQubits::One(Qubit(3)).partner_of(Qubit(3)), None);
    }

    #[test]
    fn gate_display_matches_paper_listing() {
        let g = Gate {
            id: GateId(0),
            opcode: Opcode::Ms,
            qubits: GateQubits::Two(Qubit(0), Qubit(1)),
        };
        assert_eq!(g.to_string(), "MS q[0], q[1];");
    }

    #[test]
    fn gate_qubits_iter_order() {
        let gq = GateQubits::Two(Qubit(7), Qubit(2));
        let v: Vec<_> = gq.iter().collect();
        assert_eq!(v, vec![Qubit(7), Qubit(2)]);
        let v1: Vec<_> = GateQubits::One(Qubit(9)).iter().collect();
        assert_eq!(v1, vec![Qubit(9)]);
    }
}
