//! Text-format parser for the paper's program listings.
//!
//! The format is one statement per line, matching the listings in the paper:
//!
//! ```text
//! # comments start with '#' or '//'
//! MS q[0], q[1];
//! H q[2];
//! ```
//!
//! Trailing semicolons are required; whitespace is free-form; opcodes are
//! case-insensitive.

use crate::circuit::Circuit;
use crate::error::ParseProgramError;
use crate::gate::{Opcode, Qubit};

/// Parses a program over `num_qubits` qubits.
///
/// # Errors
///
/// Returns a [`ParseProgramError`] naming the first offending line if a
/// statement is malformed, uses an unknown opcode, or fails circuit
/// validation (out-of-range qubit, duplicate operand, wrong arity).
///
/// # Example
///
/// ```
/// use qccd_circuit::parser::parse_program;
///
/// # fn main() -> Result<(), qccd_circuit::ParseProgramError> {
/// let c = parse_program("MS q[0], q[1];\nMS q[2], q[3];", 4)?;
/// assert_eq!(c.two_qubit_gate_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_program(text: &str, num_qubits: u32) -> Result<Circuit, ParseProgramError> {
    let mut circuit = Circuit::new(num_qubits);
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stmt = strip_comment(raw).trim();
        if stmt.is_empty() {
            continue;
        }
        let stmt = stmt
            .strip_suffix(';')
            .ok_or_else(|| ParseProgramError::Malformed {
                line,
                text: raw.trim().to_owned(),
            })?;
        let mut parts = stmt.splitn(2, char::is_whitespace);
        let mnemonic = parts.next().unwrap_or("");
        let operands = parts.next().unwrap_or("").trim();
        let opcode =
            Opcode::from_mnemonic(mnemonic).ok_or_else(|| ParseProgramError::UnknownOpcode {
                line,
                mnemonic: mnemonic.to_owned(),
            })?;
        let qubits = parse_operands(operands).ok_or_else(|| ParseProgramError::Malformed {
            line,
            text: raw.trim().to_owned(),
        })?;
        let result = match qubits.as_slice() {
            [q] => circuit.push_single_qubit(opcode, *q).map(|_| ()),
            [a, b] => circuit.push_two_qubit(opcode, *a, *b).map(|_| ()),
            _ => {
                return Err(ParseProgramError::Malformed {
                    line,
                    text: raw.trim().to_owned(),
                })
            }
        };
        result.map_err(|source| ParseProgramError::Invalid { line, source })?;
    }
    Ok(circuit)
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find('#')
        .into_iter()
        .chain(line.find("//"))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

/// Parses `q[0], q[1]`-style operand lists. Returns `None` on any syntax error.
fn parse_operands(s: &str) -> Option<Vec<Qubit>> {
    if s.is_empty() {
        return None;
    }
    s.split(',')
        .map(|tok| {
            let tok = tok.trim();
            let inner = tok.strip_prefix("q[")?.strip_suffix(']')?;
            inner.trim().parse::<u32>().ok().map(Qubit)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateQubits;

    #[test]
    fn parses_paper_sample_program() {
        // Fig. 2a of the paper.
        let text = "1. MS q[0], q[1];\n2. MS q[2], q[3];";
        // Leading "1." numerals are not part of the format; strip them first.
        let cleaned: String = text
            .lines()
            .map(|l| {
                l.trim_start_matches(|c: char| c.is_ascii_digit() || c == '.')
                    .trim()
            })
            .collect::<Vec<_>>()
            .join("\n");
        let c = parse_program(&cleaned, 6).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(
            c.gate(crate::GateId(0)).qubits,
            GateQubits::Two(Qubit(0), Qubit(1))
        );
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let text = "# header\n\nMS q[0], q[1]; // inline\n  \n// full line\nH q[2];";
        let c = parse_program(text, 3).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse_program("MS q[0], q[1]", 2).unwrap_err();
        assert!(matches!(err, ParseProgramError::Malformed { line: 1, .. }));
    }

    #[test]
    fn rejects_unknown_opcode() {
        let err = parse_program("FOO q[0];", 2).unwrap_err();
        assert!(matches!(
            err,
            ParseProgramError::UnknownOpcode { line: 1, .. }
        ));
    }

    #[test]
    fn rejects_bad_operand_syntax() {
        for bad in ["MS q0, q1;", "MS q[0] q[1];", "MS ;", "MS q[x];"] {
            let err = parse_program(bad, 4).unwrap_err();
            assert!(
                matches!(err, ParseProgramError::Malformed { .. }),
                "expected malformed for {bad:?}, got {err:?}"
            );
        }
    }

    #[test]
    fn rejects_out_of_range_qubit_with_line_number() {
        let err = parse_program("MS q[0], q[1];\nMS q[0], q[9];", 2).unwrap_err();
        assert!(matches!(err, ParseProgramError::Invalid { line: 2, .. }));
    }

    #[test]
    fn rejects_three_operands() {
        let err = parse_program("MS q[0], q[1], q[2];", 4).unwrap_err();
        assert!(matches!(err, ParseProgramError::Malformed { .. }));
    }

    #[test]
    fn case_insensitive_opcodes() {
        let c = parse_program("ms q[0], q[1];\nh q[0];", 2).unwrap();
        assert_eq!(c.gate(crate::GateId(0)).opcode, Opcode::Ms);
        assert_eq!(c.gate(crate::GateId(1)).opcode, Opcode::H);
    }
}
