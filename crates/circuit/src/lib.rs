//! Quantum circuit intermediate representation for the muzzle-shuttle
//! QCCD compiler.
//!
//! This crate provides the circuit-level substrate that the paper's compiler
//! operates on:
//!
//! * [`Qubit`], [`GateId`], [`Opcode`], [`Gate`] — the basic vocabulary.
//! * [`Circuit`] — an ordered sequence of validated gates.
//! * [`DependencyDag`] — the gate-dependency graph of §II-A of the paper
//!   (a layered DAG; gates in a layer are mutually independent).
//! * [`parser`] — a tiny text format for programs such as `MS q[0], q[1];`,
//!   mirroring the listings in the paper.
//! * [`generators`] — synthetic benchmark circuits reproducing the
//!   interaction patterns of the paper's evaluation suite (Supremacy, QAOA,
//!   QFT, SquareRoot, QuadraticForm, Random).
//! * [`stats`] — circuit statistics (interaction graph, locality metrics).
//!
//! # Example
//!
//! ```
//! use qccd_circuit::{Circuit, Opcode, Qubit};
//!
//! # fn main() -> Result<(), qccd_circuit::CircuitError> {
//! let mut circuit = Circuit::new(4);
//! circuit.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1))?;
//! circuit.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3))?;
//! let dag = circuit.dependency_dag();
//! assert_eq!(dag.layer_count(), 1); // both gates are independent
//! # Ok(())
//! # }
//! ```

mod circuit;
mod dag;
mod error;
mod gate;

pub mod generators;
pub mod parser;
pub mod qasm;
pub mod stats;

pub use circuit::Circuit;
pub use dag::{DependencyDag, ReadySet};
pub use error::{CircuitError, ParseProgramError};
pub use gate::{Gate, GateId, GateQubits, Opcode, Qubit};
