//! QuadraticForm benchmark (all-to-all + local arithmetic pattern).

use crate::circuit::Circuit;
use crate::gate::{Opcode, Qubit};

/// Generates a QuadraticForm circuit in the style of Qiskit's
/// `QuadraticForm` (Gilliam et al., "Grover Adaptive Search for Constrained
/// Polynomial Binary Optimization").
///
/// The circuit evaluates `x^T Q x` into phase: every variable pair `(i, j)`
/// with a non-zero quadratic coefficient contributes a controlled phase
/// (one ZZ interaction here), giving the all-to-all upper-triangle sweep;
/// the result-register arithmetic adds local carry-chain interactions. The
/// paper characterises it together with QFT: "The QFT and the QuadraticForm
/// circuits have all-to-all connectivities" (§IV-B).
///
/// Emission order interleaves dense rows with carry chains so long- and
/// short-range gates mix through the program rather than segregating into
/// phases. The paper's instance (64 qubits, 3400 two-qubit gates) is reached
/// by `quadratic_form(64, 3400)`: the 64-qubit upper triangle provides 2016
/// pair gates and carry chains supply the remaining 1384.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Example
///
/// ```
/// use qccd_circuit::generators::quadratic_form;
///
/// let c = quadratic_form(64, 3400);
/// assert_eq!(c.two_qubit_gate_count(), 3400); // matches Table II
/// ```
pub fn quadratic_form(n: u32, target_two_qubit_gates: usize) -> Circuit {
    assert!(n >= 2, "quadratic_form requires at least 2 qubits");
    let mut c = Circuit::with_capacity(n, target_two_qubit_gates + n as usize);
    for q in 0..n {
        c.push_single_qubit(Opcode::H, Qubit(q))
            .expect("qubit index in range by construction");
    }
    let mut emitted = 0usize;
    // Alternate: one dense row of the quadratic terms, then one local
    // carry-chain segment, until the target count is reached.
    let mut row = 0u32;
    let mut chain_start = 0u32;
    while emitted < target_two_qubit_gates {
        if row < n {
            for j in (row + 1)..n {
                if emitted >= target_two_qubit_gates {
                    break;
                }
                c.push_two_qubit(Opcode::Zz, Qubit(row), Qubit(j))
                    .expect("pair in range by construction");
                emitted += 1;
            }
            row += 1;
        }
        // Local carry chain over an 8-qubit window, sliding each iteration.
        let start = chain_start % n;
        for k in 0..7u32 {
            if emitted >= target_two_qubit_gates {
                break;
            }
            let a = (start + k) % n;
            let b = (start + k + 1) % n;
            if a != b {
                c.push_two_qubit(Opcode::Ms, Qubit(a), Qubit(b))
                    .expect("pair in range by construction");
                emitted += 1;
            }
        }
        chain_start = chain_start.wrapping_add(8);
        if row >= n && emitted < target_two_qubit_gates && n == 2 {
            // Degenerate 2-qubit register: only one possible pair.
            c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1))
                .expect("pair valid");
            emitted += 1;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_gate_count() {
        let c = quadratic_form(64, 3400);
        assert_eq!(c.two_qubit_gate_count(), 3400);
        assert_eq!(c.num_qubits(), 64);
    }

    #[test]
    fn covers_all_to_all_pairs() {
        let n = 16u32;
        // Enough budget for the full triangle (120) plus the interleaved
        // chains (16 iterations × 7 gates).
        let c = quadratic_form(n, 240);
        let mut seen = vec![vec![false; n as usize]; n as usize];
        for g in c.gates() {
            if let Some((a, b)) = g.two_qubit_operands() {
                seen[a.index()][b.index()] = true;
                seen[b.index()][a.index()] = true;
            }
        }
        for (i, row) in seen.iter().enumerate() {
            for (j, &hit) in row.iter().enumerate().skip(i + 1) {
                assert!(hit, "pair ({i},{j}) missing");
            }
        }
    }

    #[test]
    fn mixes_long_and_short_range() {
        let c = quadratic_form(64, 3400);
        let first_thousand = &c.gates()[64..1064];
        let long = first_thousand
            .iter()
            .filter_map(|g| g.two_qubit_operands())
            .filter(|(a, b)| a.0.abs_diff(b.0) > 16)
            .count();
        let short = first_thousand
            .iter()
            .filter_map(|g| g.two_qubit_operands())
            .filter(|(a, b)| a.0.abs_diff(b.0) == 1)
            .count();
        assert!(
            long > 100,
            "long-range gates should appear early, got {long}"
        );
        assert!(short > 100, "short-range gates should mix in, got {short}");
    }

    #[test]
    fn exact_target_for_small_sizes() {
        for target in [0, 1, 5, 33] {
            assert_eq!(
                quadratic_form(8, target).two_qubit_gate_count(),
                target,
                "target {target}"
            );
        }
    }
}
