//! The paper's evaluation suite, packaged for the benchmark harness.

use crate::circuit::Circuit;
use crate::generators::{qaoa, qft, quadratic_form, random_circuit, square_root, supremacy};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier for one of the paper's five named NISQ benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PaperBenchmark {
    /// Google supremacy-style 8×8 grid circuit (64q, 560 2q gates).
    Supremacy,
    /// QAOA MaxCut on a random 3-regular graph (64q, ≈1260 2q gates).
    Qaoa,
    /// Grover-style square root (78q, 1028 2q gates).
    SquareRoot,
    /// Quantum Fourier transform (64q, 4032 2q gates).
    Qft,
    /// Qiskit-style QuadraticForm (64q, 3400 2q gates).
    QuadraticForm,
}

impl PaperBenchmark {
    /// All five benchmarks in the order of Table II.
    pub const ALL: [PaperBenchmark; 5] = [
        PaperBenchmark::Supremacy,
        PaperBenchmark::Qaoa,
        PaperBenchmark::SquareRoot,
        PaperBenchmark::Qft,
        PaperBenchmark::QuadraticForm,
    ];

    /// The display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PaperBenchmark::Supremacy => "Supremacy",
            PaperBenchmark::Qaoa => "QAOA",
            PaperBenchmark::SquareRoot => "SquareRoot",
            PaperBenchmark::Qft => "QFT",
            PaperBenchmark::QuadraticForm => "QuadraticForm",
        }
    }

    /// Generates the benchmark circuit at the paper's scale.
    pub fn generate(self) -> Circuit {
        match self {
            PaperBenchmark::Supremacy => supremacy(8, 8, 20),
            PaperBenchmark::Qaoa => qaoa(64, 13, 0xA0A0),
            PaperBenchmark::SquareRoot => square_root(78, 9),
            PaperBenchmark::Qft => qft(64),
            PaperBenchmark::QuadraticForm => quadratic_form(64, 3400),
        }
    }
}

impl fmt::Display for PaperBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named circuit instance produced by the suite builders.
#[derive(Debug, Clone)]
pub struct BenchmarkCircuit {
    /// Human-readable name (e.g. `"QAOA"` or `"Random-65q-#12"`).
    pub name: String,
    /// The circuit itself.
    pub circuit: Circuit,
}

/// Builds the five named NISQ benchmarks of Table II at paper scale.
pub fn paper_suite() -> Vec<BenchmarkCircuit> {
    PaperBenchmark::ALL
        .iter()
        .map(|b| BenchmarkCircuit {
            name: b.name().to_owned(),
            circuit: b.generate(),
        })
        .collect()
}

/// Builds the paper's random suite: `per_size` circuits for each of the
/// sizes 60, 65, 70 and 75 qubits (the paper uses 30 per size → 120 total).
///
/// Gate counts are drawn per-circuit from a deterministic spread around the
/// paper's mean of 1438 (σ ≈ 413), seeded by `seed`.
pub fn random_suite(per_size: usize, seed: u64) -> Vec<BenchmarkCircuit> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(per_size * 4);
    for &qubits in &[60u32, 65, 70, 75] {
        for i in 0..per_size {
            // Approximate the paper's N(1438, 413) gate-count distribution
            // with a clamped triangular sample (sum of two uniforms).
            let a = rng.gen_range(0.0..1.0f64);
            let b = rng.gen_range(0.0..1.0f64);
            let gates = (1438.0 + 413.0 * 1.7 * (a + b - 1.0)).round().max(200.0) as usize;
            let circuit_seed = rng.gen::<u64>();
            out.push(BenchmarkCircuit {
                name: format!("Random-{qubits}q-#{i}"),
                circuit: random_circuit(qubits, gates, circuit_seed),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_matches_table2_sizes() {
        let suite = paper_suite();
        let expect = [
            ("Supremacy", 64, 560),
            ("QAOA", 64, 1248),
            ("SquareRoot", 78, 1028),
            ("QFT", 64, 4032),
            ("QuadraticForm", 64, 3400),
        ];
        assert_eq!(suite.len(), 5);
        for (bench, (name, qubits, gates)) in suite.iter().zip(expect) {
            assert_eq!(bench.name, name);
            assert_eq!(bench.circuit.num_qubits(), qubits, "{name} qubits");
            assert_eq!(bench.circuit.two_qubit_gate_count(), gates, "{name} gates");
        }
    }

    #[test]
    fn random_suite_shape() {
        let suite = random_suite(3, 99);
        assert_eq!(suite.len(), 12);
        let sizes: Vec<u32> = suite.iter().map(|b| b.circuit.num_qubits()).collect();
        assert_eq!(&sizes[..3], &[60, 60, 60]);
        assert_eq!(&sizes[9..], &[75, 75, 75]);
        for b in &suite {
            assert!(b.circuit.two_qubit_gate_count() >= 200);
        }
    }

    #[test]
    fn random_suite_deterministic() {
        let a = random_suite(2, 7);
        let b = random_suite(2, 7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.circuit, y.circuit);
        }
    }

    #[test]
    fn random_suite_mean_near_paper() {
        let suite = random_suite(30, 2022);
        let mean: f64 = suite
            .iter()
            .map(|b| b.circuit.two_qubit_gate_count() as f64)
            .sum::<f64>()
            / suite.len() as f64;
        assert!(
            (mean - 1438.0).abs() < 150.0,
            "mean gate count {mean} too far from paper's 1438"
        );
    }
}
