//! Google-supremacy-style 2-D grid benchmark (nearest-neighbour pattern).

use crate::circuit::Circuit;
use crate::gate::{Opcode, Qubit};

/// Generates a supremacy-style random-circuit-sampling benchmark on a
/// `rows × cols` qubit grid.
///
/// Each cycle activates one of four edge orientations in rotation —
/// horizontal-even, vertical-even, horizontal-odd, vertical-odd — applying a
/// two-qubit MS gate on every activated edge, preceded by a single-qubit
/// rotation layer (as in Google's pattern). This reproduces the "nearest
/// neighbor gate pattern" the paper attributes to the Supremacy benchmark
/// (§IV-B). The paper's instance is 64 qubits with 560 two-qubit gates,
/// which an 8×8 grid reaches at 20 cycles (28 edges per orientation).
///
/// # Example
///
/// ```
/// use qccd_circuit::generators::supremacy;
///
/// let c = supremacy(8, 8, 20);
/// assert_eq!(c.num_qubits(), 64);
/// assert_eq!(c.two_qubit_gate_count(), 560); // matches Table II
/// ```
pub fn supremacy(rows: u32, cols: u32, cycles: u32) -> Circuit {
    let n = rows * cols;
    let mut c = Circuit::new(n);
    let q = |r: u32, col: u32| Qubit(r * cols + col);
    for cycle in 0..cycles {
        // Single-qubit layer (random-rotation stand-in).
        for i in 0..n {
            c.push_single_qubit(Opcode::Rx, Qubit(i))
                .expect("qubit index in range by construction");
        }
        // Two-qubit layer on one of four edge orientations.
        match cycle % 4 {
            0 => {
                // Horizontal edges starting at even columns.
                for r in 0..rows {
                    for col in (0..cols.saturating_sub(1)).step_by(2) {
                        c.push_two_qubit(Opcode::Ms, q(r, col), q(r, col + 1))
                            .expect("grid edge endpoints valid");
                    }
                }
            }
            1 => {
                // Vertical edges starting at even rows.
                for r in (0..rows.saturating_sub(1)).step_by(2) {
                    for col in 0..cols {
                        c.push_two_qubit(Opcode::Ms, q(r, col), q(r + 1, col))
                            .expect("grid edge endpoints valid");
                    }
                }
            }
            2 => {
                // Horizontal edges starting at odd columns.
                for r in 0..rows {
                    for col in (1..cols.saturating_sub(1)).step_by(2) {
                        c.push_two_qubit(Opcode::Ms, q(r, col), q(r, col + 1))
                            .expect("grid edge endpoints valid");
                    }
                }
            }
            _ => {
                // Vertical edges starting at odd rows.
                for r in (1..rows.saturating_sub(1)).step_by(2) {
                    for col in 0..cols {
                        c.push_two_qubit(Opcode::Ms, q(r, col), q(r + 1, col))
                            .expect("grid edge endpoints valid");
                    }
                }
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_gate_count() {
        // 8x8 grid: orientation gate counts are 32, 32, 24, 24 per 4-cycle
        // block (112 per block); 20 cycles = 5 blocks = 560. Matches Table II.
        let c = supremacy(8, 8, 20);
        assert_eq!(c.two_qubit_gate_count(), 560);
    }

    #[test]
    fn gates_are_grid_neighbours() {
        let (rows, cols) = (4, 5);
        let c = supremacy(rows, cols, 8);
        for g in c.gates() {
            if let Some((a, b)) = g.two_qubit_operands() {
                let (ra, ca) = (a.0 / cols, a.0 % cols);
                let (rb, cb) = (b.0 / cols, b.0 % cols);
                let dist = ra.abs_diff(rb) + ca.abs_diff(cb);
                assert_eq!(dist, 1, "gate {a}-{b} is not a grid edge");
            }
        }
    }

    #[test]
    fn no_qubit_reused_within_a_cycle_layer() {
        let c = supremacy(6, 6, 4);
        // Split gates into per-cycle two-qubit layers and check disjointness.
        let mut current: Vec<bool> = vec![false; 36];
        for g in c.gates() {
            match g.qubits {
                crate::GateQubits::One(_) => current = vec![false; 36], // layer boundary
                crate::GateQubits::Two(a, b) => {
                    assert!(!current[a.index()] && !current[b.index()]);
                    current[a.index()] = true;
                    current[b.index()] = true;
                }
            }
        }
    }

    #[test]
    fn zero_cycles_is_empty() {
        assert!(supremacy(8, 8, 0).is_empty());
    }
}
