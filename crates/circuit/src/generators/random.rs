//! Uniform random two-qubit-gate circuits (the paper's 120-circuit suite).

use crate::circuit::Circuit;
use crate::gate::{Opcode, Qubit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random circuit of `num_gates` two-qubit MS gates over
/// `num_qubits` qubits, with operand pairs drawn uniformly at random.
///
/// This reproduces the paper's random benchmark construction: "random
/// circuits ... of sizes 60, 65, 70, and 75 qubits ... with average 1438
/// 2-qubit gates" (§IV-A). Deterministic in `(num_qubits, num_gates, seed)`.
///
/// # Panics
///
/// Panics if `num_qubits < 2` (no valid two-qubit gate exists).
///
/// # Example
///
/// ```
/// use qccd_circuit::generators::random_circuit;
///
/// let c = random_circuit(60, 1438, 7);
/// assert_eq!(c.num_qubits(), 60);
/// assert_eq!(c.two_qubit_gate_count(), 1438);
/// ```
pub fn random_circuit(num_qubits: u32, num_gates: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 2, "random circuit needs at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_capacity(num_qubits, num_gates);
    for _ in 0..num_gates {
        let a = rng.gen_range(0..num_qubits);
        let b = loop {
            let b = rng.gen_range(0..num_qubits);
            if b != a {
                break b;
            }
        };
        c.push_two_qubit(Opcode::Ms, Qubit(a), Qubit(b))
            .expect("generated operands are validated by construction");
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_size_parameters() {
        let c = random_circuit(5, 100, 1);
        assert_eq!(c.num_qubits(), 5);
        assert_eq!(c.len(), 100);
        assert_eq!(c.two_qubit_gate_count(), 100);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(random_circuit(10, 50, 42), random_circuit(10, 50, 42));
        assert_ne!(random_circuit(10, 50, 42), random_circuit(10, 50, 43));
    }

    #[test]
    fn covers_qubit_range() {
        let c = random_circuit(8, 400, 3);
        let mut used = [false; 8];
        for g in c.gates() {
            for q in g.qubits.iter() {
                used[q.index()] = true;
            }
        }
        assert!(
            used.iter().all(|&u| u),
            "all qubits should appear in 400 gates"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 qubits")]
    fn rejects_single_qubit_register() {
        random_circuit(1, 10, 0);
    }
}
