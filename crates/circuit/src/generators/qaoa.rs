//! QAOA MaxCut benchmark (nearest-neighbour-ish sparse-graph pattern).

use crate::circuit::Circuit;
use crate::gate::{Opcode, Qubit};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Generates a QAOA MaxCut circuit on a random 3-regular graph.
///
/// QAOA with `rounds` alternating cost/mixer layers: each round applies one
/// ZZ interaction per graph edge (the cost layer) followed by an RX per qubit
/// (the mixer). A 3-regular graph on `n` vertices has `3n/2` edges, so the
/// paper's 64-qubit / 1260-two-qubit-gate QAOA instance corresponds to
/// ~13 rounds (`13 · 96 = 1248`). The 3-regular edge structure is what gives
/// QAOA its "nearest neighbor gate pattern" characterisation in §IV-B.
///
/// The graph is sampled by repeated perfect-matching union (configuration
/// model with retry), deterministic in `seed`.
///
/// # Panics
///
/// Panics if `n < 4` or `n` is odd (no 3-regular graph exists).
///
/// # Example
///
/// ```
/// use qccd_circuit::generators::qaoa;
///
/// let c = qaoa(64, 13, 11);
/// assert_eq!(c.two_qubit_gate_count(), 13 * 96);
/// ```
pub fn qaoa(n: u32, rounds: u32, seed: u64) -> Circuit {
    assert!(
        n >= 4 && n.is_multiple_of(2),
        "3-regular graph requires even n >= 4"
    );
    let edges = random_3_regular(n, seed);
    let mut c = Circuit::with_capacity(n, (edges.len() * rounds as usize) + (n * rounds) as usize);
    for _ in 0..rounds {
        for &(a, b) in &edges {
            c.push_two_qubit(Opcode::Zz, Qubit(a), Qubit(b))
                .expect("edge endpoints in range by construction");
        }
        for q in 0..n {
            c.push_single_qubit(Opcode::Rx, Qubit(q))
                .expect("qubit index in range by construction");
        }
    }
    c
}

/// Samples a simple 3-regular graph on `n` vertices as the union of three
/// edge-disjoint perfect matchings (retrying until all three are disjoint
/// and produce no duplicate edges).
fn random_3_regular(n: u32, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity((3 * n / 2) as usize);
        let mut ok = true;
        for _ in 0..3 {
            let mut verts: Vec<u32> = (0..n).collect();
            verts.shuffle(&mut rng);
            for pair in verts.chunks(2) {
                let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
                if edges.contains(&(a, b)) {
                    ok = false;
                    break;
                }
                edges.push((a, b));
            }
            if !ok {
                break;
            }
        }
        if ok {
            return edges;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_3_regular() {
        let edges = random_3_regular(64, 5);
        assert_eq!(edges.len(), 96);
        let mut degree = vec![0u32; 64];
        for &(a, b) in &edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
            assert_ne!(a, b);
        }
        assert!(degree.iter().all(|&d| d == 3));
    }

    #[test]
    fn no_duplicate_edges() {
        let mut edges = random_3_regular(32, 9);
        let before = edges.len();
        edges.sort_unstable();
        edges.dedup();
        assert_eq!(edges.len(), before);
    }

    #[test]
    fn paper_scale_gate_count() {
        // Paper Table II: QAOA, 64 qubits, 1260 two-qubit gates (≈ 13 rounds).
        let c = qaoa(64, 13, 1);
        assert_eq!(c.two_qubit_gate_count(), 1248);
        assert_eq!(c.num_qubits(), 64);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(qaoa(16, 2, 4), qaoa(16, 2, 4));
    }

    #[test]
    fn mixer_layers_present() {
        let c = qaoa(8, 2, 0);
        let rx = c.gates().iter().filter(|g| g.opcode == Opcode::Rx).count();
        assert_eq!(rx, 16);
    }

    #[test]
    #[should_panic(expected = "even n")]
    fn rejects_odd_n() {
        qaoa(7, 1, 0);
    }
}
