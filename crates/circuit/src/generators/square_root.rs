//! SquareRoot benchmark (mixed short- and long-range pattern).

use crate::circuit::Circuit;
use crate::gate::{Opcode, Qubit};

/// Generates a Grover-style square-root circuit with the mixed gate ranges
/// the paper highlights: "The SquareRoot circuit has short and long-range
/// gates, and results indicate that we may get best reductions for such
/// patterns" (§IV-B).
///
/// Structure per iteration block (mirroring a Grover oracle + diffusion on a
/// split register of `n/2` data and `n/2` ancilla qubits):
///
/// 1. *Oracle (short range)*: MS gates along the data-register chain
///    `(i, i+1)`, i.e. squaring-circuit carry propagation.
/// 2. *Cross coupling (long range)*: MS gates `(i, i + n/2)` pairing each
///    data qubit with its ancilla — long range once qubits are laid out
///    linearly across traps.
/// 3. *Diffusion (short range on ancillas)*: MS gates along the ancilla
///    chain.
///
/// The paper's instance is 78 qubits with 1028 two-qubit gates, reached by
/// `square_root(78, 9)` (114 two-qubit gates per block, truncated to 1028
/// at the paper's count).
///
/// # Panics
///
/// Panics if `n < 4`.
///
/// # Example
///
/// ```
/// use qccd_circuit::generators::square_root;
///
/// let c = square_root(78, 9);
/// assert_eq!(c.num_qubits(), 78);
/// assert_eq!(c.two_qubit_gate_count(), 1028); // matches Table II
/// ```
pub fn square_root(n: u32, blocks: u32) -> Circuit {
    assert!(n >= 4, "square_root requires at least 4 qubits");
    let half = n / 2;
    // Two-qubit gates per block: (half-1) oracle + half cross + (n-half-1) diffusion.
    let per_block = (half - 1) + half + (n - half - 1);
    let target = {
        // Truncate the final block to hit the paper's exact 1028-gate count
        // for the canonical (78, 9) instance; other parameters emit whole
        // blocks.
        if n == 78 && blocks == 9 {
            1028
        } else {
            (per_block * blocks) as usize as u32
        }
    } as usize;

    let mut c = Circuit::new(n);
    let mut emitted = 0usize;
    'outer: for _ in 0..blocks {
        for q in 0..half {
            c.push_single_qubit(Opcode::H, Qubit(q))
                .expect("qubit index in range by construction");
        }
        // 1. Oracle: short-range chain on the data register.
        for i in 0..half - 1 {
            if emitted >= target {
                break 'outer;
            }
            c.push_two_qubit(Opcode::Ms, Qubit(i), Qubit(i + 1))
                .expect("chain edge valid");
            emitted += 1;
        }
        // 2. Cross coupling: long-range data <-> ancilla pairs.
        for i in 0..half {
            if emitted >= target {
                break 'outer;
            }
            c.push_two_qubit(Opcode::Ms, Qubit(i), Qubit(i + half))
                .expect("cross edge valid");
            emitted += 1;
        }
        // 3. Diffusion: short-range chain on the ancilla register.
        for i in half..n - 1 {
            if emitted >= target {
                break 'outer;
            }
            c.push_two_qubit(Opcode::Ms, Qubit(i), Qubit(i + 1))
                .expect("chain edge valid");
            emitted += 1;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_gate_count() {
        let c = square_root(78, 9);
        assert_eq!(c.two_qubit_gate_count(), 1028);
        assert_eq!(c.num_qubits(), 78);
    }

    #[test]
    fn has_both_short_and_long_range_gates() {
        let c = square_root(78, 9);
        let mut short = 0usize;
        let mut long = 0usize;
        for g in c.gates() {
            if let Some((a, b)) = g.two_qubit_operands() {
                if a.0.abs_diff(b.0) == 1 {
                    short += 1;
                } else if a.0.abs_diff(b.0) >= 30 {
                    long += 1;
                }
            }
        }
        assert!(short > 300, "expected many short-range gates, got {short}");
        assert!(long > 300, "expected many long-range gates, got {long}");
    }

    #[test]
    fn whole_blocks_for_non_canonical_params() {
        let c = square_root(8, 2);
        // per block: 3 oracle + 4 cross + 3 diffusion = 10.
        assert_eq!(c.two_qubit_gate_count(), 20);
    }

    #[test]
    #[should_panic(expected = "at least 4 qubits")]
    fn rejects_tiny_register() {
        square_root(3, 1);
    }
}
