//! Quantum Fourier Transform benchmark (all-to-all pattern).

use crate::circuit::Circuit;
use crate::gate::{Opcode, Qubit};

/// Generates an `n`-qubit QFT circuit in the trapped-ion native gate set.
///
/// Structure: for each target qubit `i` a Hadamard, then controlled-phase
/// rotations with every later qubit `j > i`. Each controlled-phase compiles
/// to **two** MS gates on a trapped-ion machine, which is how the paper
/// arrives at 4032 two-qubit gates for 64 qubits (`64·63 = 4032`, i.e.
/// `2 · n(n−1)/2`).
///
/// The resulting interaction pattern is all-to-all: "The QFT ... circuits
/// have all-to-all connectivities" (§IV-B).
///
/// # Example
///
/// ```
/// use qccd_circuit::generators::qft;
///
/// let c = qft(64);
/// assert_eq!(c.two_qubit_gate_count(), 4032); // matches Table II
/// ```
pub fn qft(n: u32) -> Circuit {
    let pairs = (n as usize) * (n as usize).saturating_sub(1);
    let mut c = Circuit::with_capacity(n, pairs + n as usize);
    for i in 0..n {
        c.push_single_qubit(Opcode::H, Qubit(i))
            .expect("qubit index in range by construction");
        for j in (i + 1)..n {
            // One controlled-phase = two native MS interactions.
            for _ in 0..2 {
                c.push_two_qubit(Opcode::Ms, Qubit(i), Qubit(j))
                    .expect("qubit indices in range by construction");
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_count_matches_paper_table2() {
        assert_eq!(qft(64).two_qubit_gate_count(), 4032);
    }

    #[test]
    fn all_pairs_interact() {
        let n = 6u32;
        let c = qft(n);
        let mut seen = vec![vec![false; n as usize]; n as usize];
        for g in c.gates() {
            if let Some((a, b)) = g.two_qubit_operands() {
                seen[a.index()][b.index()] = true;
                seen[b.index()][a.index()] = true;
            }
        }
        for (i, row) in seen.iter().enumerate() {
            for (j, &hit) in row.iter().enumerate() {
                if i != j {
                    assert!(hit, "pair ({i},{j}) missing");
                }
            }
        }
    }

    #[test]
    fn has_hadamard_per_qubit() {
        let c = qft(8);
        let h = c.gates().iter().filter(|g| g.opcode == Opcode::H).count();
        assert_eq!(h, 8);
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(qft(0).len(), 0);
        assert_eq!(qft(1).two_qubit_gate_count(), 0);
        assert_eq!(qft(2).two_qubit_gate_count(), 2);
    }
}
