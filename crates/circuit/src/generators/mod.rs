//! Synthetic benchmark circuit generators.
//!
//! The paper evaluates on 5 NISQ benchmarks (drawn from QCCDSim and the
//! Qiskit circuit library) plus 120 random circuits. Those exact circuit
//! files are not redistributable, so each generator here reproduces the
//! *interaction pattern* the paper attributes its results to (§IV-B):
//!
//! | Benchmark | Pattern | Generator |
//! |---|---|---|
//! | Supremacy | 2-D grid nearest-neighbour | [`supremacy`] |
//! | QAOA | 3-regular-graph MaxCut rounds | [`qaoa`] |
//! | QFT | all-to-all (each CP as 2 MS gates) | [`qft`] |
//! | SquareRoot | short- **and** long-range mix | [`square_root`] |
//! | QuadraticForm | all-to-all + local arithmetic | [`quadratic_form`] |
//! | Random | uniform random pairs | [`random_circuit`] |
//!
//! All generators are deterministic functions of their parameters (and a
//! `u64` seed where randomness is involved).

mod qaoa;
mod qft;
mod quadratic_form;
mod random;
mod square_root;
mod suite;
mod supremacy;

pub use qaoa::qaoa;
pub use qft::qft;
pub use quadratic_form::quadratic_form;
pub use random::random_circuit;
pub use square_root::square_root;
pub use suite::{paper_suite, random_suite, BenchmarkCircuit, PaperBenchmark};
pub use supremacy::supremacy;
