//! Error-path coverage for `parser::parse_program`.
//!
//! The paper-scenario tests exercise only well-formed listings; these tests
//! pin the parser's behaviour on malformed gate lines, out-of-range qubit
//! indices, bad arities, and degenerate programs.

use qccd_circuit::parser::parse_program;
use qccd_circuit::{CircuitError, ParseProgramError};

#[test]
fn empty_program_is_a_valid_empty_circuit() {
    let c = parse_program("", 4).unwrap();
    assert_eq!(c.len(), 0);
    assert_eq!(c.num_qubits(), 4);
}

#[test]
fn comment_only_program_is_empty() {
    let c = parse_program("# nothing here\n// or here\n   \n", 3).unwrap();
    assert_eq!(c.len(), 0);
}

#[test]
fn zero_qubit_register_rejects_any_gate() {
    let err = parse_program("H q[0];", 0).unwrap_err();
    assert!(matches!(err, ParseProgramError::Invalid { line: 1, .. }));
}

#[test]
fn malformed_statements_name_the_line_and_text() {
    for (text, bad_line) in [
        ("MS q[0], q[1]", 1),              // missing semicolon
        ("MS q[0], q[1];\nMS q0, q1;", 2), // bare operands
        ("MS q[0] q[1];", 1),              // missing comma
        ("MS;", 1),                        // no operands at all
        ("MS ;", 1),                       // empty operand list
        ("MS q[];", 1),                    // empty index
        ("MS q[one];", 1),                 // non-numeric index
        ("MS q[0], q[1], q[2];", 1),       // three operands
        ("MS q[0], q[1];;", 1),            // double semicolon
    ] {
        let err = parse_program(text, 8).unwrap_err();
        match err {
            ParseProgramError::Malformed { line, ref text } => {
                assert_eq!(line, bad_line, "wrong line for {text:?}");
                assert!(!text.is_empty(), "offending text must be echoed");
            }
            other => panic!("expected Malformed for {text:?}, got {other:?}"),
        }
    }
}

#[test]
fn unknown_opcode_is_distinct_from_malformed() {
    let err = parse_program("CNOT q[0], q[1];", 4).unwrap_err();
    match err {
        ParseProgramError::UnknownOpcode { line, mnemonic } => {
            assert_eq!(line, 1);
            assert_eq!(mnemonic, "CNOT");
        }
        other => panic!("expected UnknownOpcode, got {other:?}"),
    }
}

#[test]
fn out_of_range_qubit_carries_circuit_error_source() {
    let err = parse_program("MS q[0], q[7];", 4).unwrap_err();
    match err {
        ParseProgramError::Invalid { line, source } => {
            assert_eq!(line, 1);
            assert!(matches!(source, CircuitError::QubitOutOfRange { .. }));
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn boundary_qubit_index_is_exclusive() {
    // q[n-1] is the last legal index; q[n] must fail.
    assert!(parse_program("H q[3];", 4).is_ok());
    assert!(matches!(
        parse_program("H q[4];", 4),
        Err(ParseProgramError::Invalid { line: 1, .. })
    ));
}

#[test]
fn duplicate_operand_rejected_through_parser() {
    let err = parse_program("MS q[2], q[2];", 4).unwrap_err();
    assert!(matches!(err, ParseProgramError::Invalid { line: 1, .. }));
}

#[test]
fn wrong_arity_for_opcode_is_invalid() {
    // H is single-qubit; MS is two-qubit.
    assert!(matches!(
        parse_program("H q[0], q[1];", 4),
        Err(ParseProgramError::Invalid { line: 1, .. })
    ));
    assert!(matches!(
        parse_program("MS q[0];", 4),
        Err(ParseProgramError::Invalid { line: 1, .. })
    ));
}

#[test]
fn error_reporting_stops_at_first_bad_line() {
    // Line 2 is bad; line 3 is worse. The parser reports line 2.
    let err = parse_program("MS q[0], q[1];\nMS q[9], q[1];\nGARBAGE;", 4).unwrap_err();
    assert!(matches!(err, ParseProgramError::Invalid { line: 2, .. }));
}

#[test]
fn errors_display_line_numbers() {
    let err = parse_program("MS q[0], q[1];\nFOO q[0];", 2).unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains('2'),
        "display should mention the line: {text}"
    );
    assert!(
        text.to_lowercase().contains("foo"),
        "display should name the mnemonic: {text}"
    );
}

#[test]
fn whitespace_and_case_do_not_mask_errors() {
    // Leading whitespace, lowercase opcode, inline comment — still catches
    // the out-of-range operand.
    let err = parse_program("   ms q[0], q[5];  // oops", 4).unwrap_err();
    assert!(matches!(err, ParseProgramError::Invalid { line: 1, .. }));
}

#[test]
fn crlf_line_endings_are_tolerated() {
    let c = parse_program("MS q[0], q[1];\r\nH q[2];\r\n", 4).unwrap();
    assert_eq!(c.len(), 2);
}
