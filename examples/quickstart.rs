//! Quickstart: compile a small circuit for a 2-trap machine, compare the
//! baseline and optimized compilers, and estimate program fidelity.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use muzzle_shuttle::circuit::generators::qft;
use muzzle_shuttle::compiler::{compile, CompilerConfig};
use muzzle_shuttle::machine::MachineSpec;
use muzzle_shuttle::sim::{simulate, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 16-qubit QFT — all-to-all interactions, so ions must shuttle.
    let circuit = qft(16);
    println!("circuit: {circuit}");

    // Two traps in a line, 10 ion slots each, 2 reserved for communication.
    let machine = MachineSpec::linear(2, 10, 2)?;
    println!("machine: {machine}");

    // Compile with the baseline (Murali et al., ISCA'20) policies...
    let baseline = compile(&circuit, &machine, &CompilerConfig::baseline())?;
    // ...and with the paper's three optimization heuristics.
    let optimized = compile(&circuit, &machine, &CompilerConfig::optimized())?;

    println!("baseline : {}", baseline.stats);
    println!("optimized: {}", optimized.stats);
    let saved = baseline.stats.shuttles as i64 - optimized.stats.shuttles as i64;
    println!(
        "shuttle reduction: {saved} ({:.1}%)",
        100.0 * saved as f64 / baseline.stats.shuttles.max(1) as f64
    );

    // Replay both schedules through the physical model.
    let params = SimParams::default();
    let base_report = simulate(&baseline.schedule, &circuit, &machine, &params)?;
    let opt_report = simulate(&optimized.schedule, &circuit, &machine, &params)?;
    println!("baseline : {base_report}");
    println!("optimized: {opt_report}");
    println!(
        "fidelity improvement: {:.2}X",
        opt_report.fidelity_improvement_over(&base_report)
    );
    Ok(())
}
