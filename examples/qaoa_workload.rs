//! Domain scenario: compiling a QAOA MaxCut workload — the benchmark with
//! the paper's highest shuttle-to-gate ratio and biggest fidelity win.
//!
//! Sweeps QAOA depth (rounds) and reports how shuttle counts, program
//! fidelity and makespan respond to the optimized compiler.
//!
//! ```text
//! cargo run --release --example qaoa_workload
//! ```

use muzzle_shuttle::circuit::generators::qaoa;
use muzzle_shuttle::compiler::{compile, CompilerConfig, ScheduleAnalysis};
use muzzle_shuttle::machine::MachineSpec;
use muzzle_shuttle::sim::{simulate, simulate_traced, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineSpec::paper_l6();
    let params = SimParams::default();
    println!("QAOA MaxCut on {machine} (64 qubits, random 3-regular graph)");
    println!(
        "{:>6} {:>9} {:>10} {:>10} {:>8} {:>12} {:>12}",
        "rounds", "2q gates", "base shtl", "opt shtl", "redux", "F improve", "makespan(ms)"
    );
    for rounds in [2u32, 5, 9, 13] {
        let circuit = qaoa(64, rounds, 0xA0A0);
        let base = compile(&circuit, &machine, &CompilerConfig::baseline())?;
        let opt = compile(&circuit, &machine, &CompilerConfig::optimized())?;
        let base_sim = simulate(&base.schedule, &circuit, &machine, &params)?;
        let opt_sim = simulate(&opt.schedule, &circuit, &machine, &params)?;
        println!(
            "{:>6} {:>9} {:>10} {:>10} {:>7.1}% {:>11.2}X {:>12.1}",
            rounds,
            circuit.two_qubit_gate_count(),
            base.stats.shuttles,
            opt.stats.shuttles,
            100.0 * (base.stats.shuttles as f64 - opt.stats.shuttles as f64)
                / base.stats.shuttles.max(1) as f64,
            opt_sim.fidelity_improvement_over(&base_sim),
            opt_sim.makespan_us / 1000.0,
        );
    }
    println!();
    println!("Deeper QAOA → more shuttles per gate → larger fidelity win for");
    println!("the optimized compiler (the paper's §IV-C observation).");

    // Dig into the deepest instance with the analysis and trace APIs.
    let circuit = qaoa(64, 13, 0xA0A0);
    let base = compile(&circuit, &machine, &CompilerConfig::baseline())?;
    let opt = compile(&circuit, &machine, &CompilerConfig::optimized())?;
    println!();
    println!("movement analysis (13 rounds):");
    let base_a = ScheduleAnalysis::analyze(&base.schedule, machine.num_traps(), 64);
    let opt_a = ScheduleAnalysis::analyze(&opt.schedule, machine.num_traps(), 64);
    println!("  baseline : {base_a}");
    println!("  optimized: {opt_a}");
    println!(
        "  ping-pong traffic removed: {} -> {} hops",
        base_a.total_ping_pong(),
        opt_a.total_ping_pong()
    );

    let trace = simulate_traced(&opt.schedule, &circuit, &machine, &params)?;
    println!(
        "  optimized machine idle fraction: {:.0}%  worst gate fidelity: {:.4}",
        100.0 * trace.idle_fraction(),
        trace.report.min_gate_fidelity
    );
    for (t, u) in trace.utilization.iter().enumerate() {
        println!(
            "  trap T{t}: {:>4} gates, {:>3} arrivals, {:>3} departures, final n-bar {:.1}",
            u.gates, u.arrivals, u.departures, u.final_n_bar
        );
    }
    Ok(())
}
