//! Beyond lines and grids: compiling onto a custom trap interconnect.
//!
//! QCCD hardware roadmaps sketch junction-based layouts (H/X junctions,
//! combs). This example builds a 6-trap star-with-tail interconnect with
//! [`TrapTopology::custom`] and compares it against the paper's L6 line for
//! the same workload.
//!
//! ```text
//! cargo run --release --example custom_interconnect
//! ```

use muzzle_shuttle::circuit::generators::random_circuit;
use muzzle_shuttle::compiler::{compile, CompilerConfig, ScheduleAnalysis};
use muzzle_shuttle::machine::{MachineSpec, TrapTopology};
use muzzle_shuttle::sim::{simulate, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = random_circuit(60, 1200, 7);
    let params = SimParams::default();
    println!("workload: {circuit}");
    println!();

    // A hub-and-spoke layout: T2 is a junction connected to T0, T1, T3;
    // T3 continues into a short tail T4 — T5.
    //
    //        T0        T1
    //          \      /
    //           ── T2 ── T3 ── T4 ── T5
    let star = TrapTopology::custom(6, &[(0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]);
    let line = TrapTopology::linear(6);

    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>12} {:>10}",
        "interconnect", "base shtl", "opt shtl", "redux", "fidelity", "hub gates"
    );
    for (name, topology) in [("L6 (paper)", line), ("star-with-tail", star)] {
        let spec = MachineSpec::new(topology, 17, 2)?;
        let base = compile(&circuit, &spec, &CompilerConfig::baseline())?;
        let opt = compile(&circuit, &spec, &CompilerConfig::optimized())?;
        let report = simulate(&opt.schedule, &circuit, &spec, &params)?;
        let analysis = ScheduleAnalysis::analyze(&opt.schedule, spec.num_traps(), 60);
        println!(
            "{:<22} {:>10} {:>10} {:>7.1}% {:>12.3e} {:>10}",
            name,
            base.stats.shuttles,
            opt.stats.shuttles,
            100.0 * (base.stats.shuttles as f64 - opt.stats.shuttles as f64)
                / base.stats.shuttles.max(1) as f64,
            report.program_fidelity,
            analysis.trap_gates[2], // the junction trap
        );
    }
    println!();
    println!("The junction shortens worst-case routes (diameter 4 vs 5), trading");
    println!("higher traffic through the hub trap — visible in its gate count.");
    Ok(())
}
