//! Architecture exploration: how trap topology and capacity shape shuttle
//! counts — the kind of co-design study QCCD simulators exist for.
//!
//! Compiles one random workload onto linear, ring and grid interconnects
//! at several capacities and prints the shuttle/fidelity landscape.
//!
//! ```text
//! cargo run --release --example topology_sweep
//! ```

use muzzle_shuttle::circuit::generators::random_circuit;
use muzzle_shuttle::compiler::{compile, CompilerConfig};
use muzzle_shuttle::machine::{MachineSpec, TrapTopology};
use muzzle_shuttle::sim::{simulate, SimParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = random_circuit(60, 1000, 42);
    let params = SimParams::default();
    println!("workload: {circuit}");
    println!(
        "{:<8} {:>9} {:>10} {:>10} {:>8} {:>13}",
        "topology", "capacity", "base shtl", "opt shtl", "redux", "opt makespan"
    );

    type TopologyBuilder = fn() -> TrapTopology;
    let topologies: Vec<(&str, TopologyBuilder)> = vec![
        ("L6", || TrapTopology::linear(6)),
        ("R6", || TrapTopology::ring(6)),
        ("G2x3", || TrapTopology::grid(2, 3)),
    ];
    for (name, build) in &topologies {
        for capacity in [13u32, 17, 25] {
            let spec = MachineSpec::new(build(), capacity, 2)?;
            let base = compile(&circuit, &spec, &CompilerConfig::baseline())?;
            let opt = compile(&circuit, &spec, &CompilerConfig::optimized())?;
            let opt_sim = simulate(&opt.schedule, &circuit, &spec, &params)?;
            println!(
                "{:<8} {:>9} {:>10} {:>10} {:>7.1}% {:>10.1} ms",
                name,
                capacity,
                base.stats.shuttles,
                opt.stats.shuttles,
                100.0 * (base.stats.shuttles as f64 - opt.stats.shuttles as f64)
                    / base.stats.shuttles.max(1) as f64,
                opt_sim.makespan_us / 1000.0,
            );
        }
    }
    println!();
    println!("Ring/grid interconnects shorten worst-case shuttle routes;");
    println!("larger traps trade fewer shuttles for slower, noisier chains.");
    Ok(())
}
