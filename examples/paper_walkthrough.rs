//! Walks through the paper's worked examples, reproducing each figure's
//! numbers:
//!
//! * Fig. 4 / Table I — excess-capacity ping-pong vs the future-ops move
//!   score.
//! * Fig. 6 — opportunistic gate re-ordering freeing a full trap.
//! * Fig. 7 — nearest-neighbour-first re-balancing vs trap-0-first.
//!
//! ```text
//! cargo run --release --example paper_walkthrough
//! ```

use muzzle_shuttle::circuit::parser::parse_program;
use muzzle_shuttle::compiler::{compile_with_mapping, CompilerConfig};
use muzzle_shuttle::machine::{InitialMapping, MachineSpec, TrapId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    fig4_table1()?;
    fig6_reordering()?;
    fig7_rebalancing()?;
    Ok(())
}

/// Fig. 4: the 4-gate program where the baseline shuttles ion 2 back and
/// forth four times while future-ops moves ion 1 once.
fn fig4_table1() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig. 4 / Table I: shuttle direction policy ==");
    let program = "\
        MS q[1], q[2];\n\
        MS q[2], q[3];\n\
        MS q[1], q[2];\n\
        MS q[2], q[4];\n";
    let circuit = parse_program(program, 5)?;
    let spec = MachineSpec::linear(2, 4, 1)?;
    // Ions 0,1 in T0 (EC 2); ions 2,3,4 in T1 (EC 1) — exactly Fig. 4.
    let mapping = InitialMapping::from_traps(
        &spec,
        vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1), TrapId(1)],
    )?;

    let baseline = compile_with_mapping(
        &circuit,
        &spec,
        &CompilerConfig::baseline(),
        mapping.clone(),
    )?;
    let optimized = compile_with_mapping(&circuit, &spec, &CompilerConfig::optimized(), mapping)?;
    println!(
        "baseline  (excess-capacity): {} shuttles  (paper: 4)",
        baseline.stats.shuttles
    );
    println!(
        "optimized (future-ops)     : {} shuttles  (paper: 1)",
        optimized.stats.shuttles
    );
    println!();
    Ok(())
}

/// Fig. 6-style scenario: the favourable destination is full; hoisting a
/// same-layer gate that moves an ion out of it saves shuttles.
fn fig6_reordering() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig. 6: opportunistic gate re-ordering ==");
    let program = "\
        MS q[6], q[1];\n\
        MS q[0], q[2];\n\
        MS q[3], q[5];\n\
        MS q[6], q[2];\n\
        MS q[0], q[3];\n\
        MS q[3], q[4];\n";
    let circuit = parse_program(program, 8)?;
    let spec = MachineSpec::linear(3, 4, 1)?;
    let mapping = InitialMapping::from_traps(
        &spec,
        vec![
            TrapId(0),
            TrapId(1),
            TrapId(1),
            TrapId(1),
            TrapId(2),
            TrapId(2),
            TrapId(0),
            TrapId(2),
        ],
    )?;
    let with_reorder = compile_with_mapping(
        &circuit,
        &spec,
        &CompilerConfig::optimized(),
        mapping.clone(),
    )?;
    let mut cfg = CompilerConfig::optimized();
    cfg.reorder = false;
    let without = compile_with_mapping(&circuit, &spec, &cfg, mapping)?;
    println!(
        "with re-ordering   : {} shuttles ({} gates hoisted)",
        with_reorder.stats.shuttles, with_reorder.stats.reorders
    );
    println!("without re-ordering: {} shuttles", without.stats.shuttles);
    println!();
    Ok(())
}

/// Fig. 7: a full trap T4 blocks traffic between T3 and T5; the baseline
/// evicts toward T0 (4 eviction shuttles), nearest-neighbour-first evicts
/// to an adjacent trap (1 eviction shuttle).
fn fig7_rebalancing() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig. 7: re-balancing a traffic block ==");
    // Communication capacity 0 lets T4 start genuinely full, exactly the
    // Fig. 7 snapshot (ECs 2,1,4,2,0,4 with capacity 6).
    let spec = MachineSpec::linear(6, 6, 0)?;
    let mut traps = Vec::new();
    for (t, occ) in [4u32, 5, 2, 4, 6, 2].into_iter().enumerate() {
        for _ in 0..occ {
            traps.push(TrapId(t as u32));
        }
    }
    let mapping = InitialMapping::from_traps(&spec, traps)?;
    // Qubit indices per trap (assigned in order):
    // T0: 0-3, T1: 4-8, T2: 9-10, T3: 11-14, T4: 15-20, T5: 21-22.
    // One gate between a T3 ion and a T5 ion must route through full T4.
    let circuit = parse_program("MS q[14], q[21];", 23)?;

    let baseline = compile_with_mapping(
        &circuit,
        &spec,
        &CompilerConfig::baseline(),
        mapping.clone(),
    )?;
    let optimized = compile_with_mapping(&circuit, &spec, &CompilerConfig::optimized(), mapping)?;
    println!(
        "baseline  (search from T0)    : {} shuttles ({} for the eviction)  [paper: 4-hop eviction]",
        baseline.stats.shuttles, baseline.stats.rebalance_shuttles
    );
    println!(
        "optimized (nearest-neighbour) : {} shuttles ({} for the eviction)  [paper: 1-hop eviction]",
        optimized.stats.shuttles, optimized.stats.rebalance_shuttles
    );
    println!();
    Ok(())
}
