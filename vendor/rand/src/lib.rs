//! Vendored, dependency-free subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API, so the workspace builds fully offline.
//!
//! Only the surface the workspace actually uses is provided: a seedable
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the [`Rng`]
//! extension trait with `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom`] with Fisher–Yates `shuffle` and `choose`.
//!
//! Streams are deterministic in the seed, which is all the workspace's
//! reproducibility tests require; the generator is **not** cryptographically
//! secure. Swap this crate for the real `rand` in the workspace manifest
//! when building with network access (note that doing so changes the values
//! each seed produces, so goldens derived from seeded streams would shift).

use std::ops::{Range, RangeInclusive};

/// Low-level uniform-word source implemented by all generators.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = ((end - start) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u32, u64, usize, u8, u16);

macro_rules! impl_signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_sample_range!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Deterministic in the seed, fast, and statistically
    /// solid for simulation workloads (not cryptographically secure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "20 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_from_slice() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
