//! Vendored, dependency-free subset of the
//! [`criterion`](https://crates.io/crates/criterion) bench-harness API, so
//! the workspace's benches build and run fully offline.
//!
//! Provided: [`Criterion`], [`BenchmarkId`], benchmark groups with
//! `sample_size`, `bench_function` / `bench_with_input`, the
//! [`criterion_group!`] / [`criterion_main!`] macros, and a re-export of
//! [`std::hint::black_box`]. Measurement is a plain
//! warmup-then-median-of-samples timer printing one line per benchmark —
//! none of criterion's statistics, HTML reports, or baseline comparisons.
//! Swap in the real criterion via the workspace manifest for serious
//! measurement work.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget per benchmark (warmup + measurement).
const TARGET_BUDGET: Duration = Duration::from_millis(400);

/// Top-level bench context, passed to every registered bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by a plain label.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark over an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (a no-op in this stub, kept for API parity).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Timer handle passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Median per-iteration time of the last `iter` call.
    median: Duration,
}

impl Bencher {
    /// Times `routine`, storing the median over the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: how many iterations fit a per-sample slice?
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let per_sample = TARGET_BUDGET / (self.sample_size as u32).max(1);
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed() / iters as u32);
        }
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
    }
}

/// Executes one benchmark and prints its result line.
fn run_bench(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        median: Duration::ZERO,
    };
    f(&mut b);
    println!("bench: {id:<50} median {:>12?}", b.median);
}

/// Registers bench functions under a group name, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the listed groups, mirroring criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 42).0, "f/42");
        assert_eq!(BenchmarkId::new("g", "x").0, "g/x");
    }
}
