//! Vendored, offline subset of the
//! [`proptest`](https://crates.io/crates/proptest) API, so the workspace's
//! property tests build and run without network access.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), [`Strategy`] with `prop_map` and
//! `boxed`, integer range strategies, [`strategy::Just`], tuple strategies,
//! [`prop_oneof!`], `any::<T>()`, [`collection::vec`], and the
//! `prop_assert*` macros.
//!
//! Semantics differ from the real proptest in one deliberate way: cases are
//! sampled from a per-test deterministic RNG and failures are **not
//! shrunk** — a failing case reports its index and message and panics
//! immediately. That keeps the implementation small while preserving the
//! tests' value as randomized invariant checks.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed alternatives (built by [`prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! Default strategies per type, behind [`any`](crate::arbitrary::any).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.rng.gen()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.rng.gen()
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.rng.gen()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.rng.gen::<u64>() as usize
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy: each value has a length drawn uniformly from `size`
    /// and elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test-loop configuration and RNG.

    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// The RNG handed to strategies, deterministically seeded per test so
    /// failures reproduce run-to-run.
    pub struct TestRng {
        /// Underlying generator (public to the crate's strategy impls).
        pub rng: StdRng,
    }

    impl TestRng {
        /// Builds a generator whose seed is a hash of `name`.
        pub fn deterministic(name: &str) -> Self {
            let mut hasher = DefaultHasher::new();
            name.hash(&mut hasher);
            TestRng {
                rng: StdRng::seed_from_u64(hasher.finish()),
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// for the configured number of sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut __proptest_rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __proptest_case in 0..config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::sample(&($strat), &mut __proptest_rng);)+
                let __proptest_result = (move || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                })();
                if let Err(message) = __proptest_result {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}",
                        stringify!($name),
                        __proptest_case + 1,
                        config.cases,
                        message
                    );
                }
            }
        }
    )*};
}

/// Uniform choice among strategy arms (all arms must yield the same type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// `assert!` for property bodies: failure aborts the case with a message
/// instead of unwinding mid-strategy.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                format_args!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Discards the current case when `cond` does not hold.
///
/// Unlike the real proptest, a discarded case simply ends successfully —
/// there is no discard budget, so a too-strict assumption silently thins
/// coverage instead of erroring.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Ok(());
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return Err(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                left,
                right,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return Err(format!(
                "assertion failed: {}\n  left: {:?}\n right: {:?} ({}:{})",
                format_args!($($fmt)+),
                left,
                right,
                file!(),
                line!()
            ));
        }
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return Err(format!(
                "assertion failed: {}\n  both: {:?} ({}:{})",
                format_args!($($fmt)+),
                left,
                file!(),
                line!()
            ));
        }
    }};
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return Err(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?} ({}:{})",
                stringify!($left),
                stringify!($right),
                left,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..=9, y in 0usize..5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn mapped_and_oneof_strategies(
            v in prop_oneof![Just(1u32), (10u32..20).prop_map(|x| x * 2)],
        ) {
            prop_assert!(v == 1 || (20..40).contains(&v));
        }

        #[test]
        fn vec_strategy_sizes(items in crate::collection::vec((0u32..4, 0u32..4), 0..10)) {
            prop_assert!(items.len() < 10);
            for (a, b) in items {
                prop_assert!(a < 4 && b < 4);
            }
        }

        #[test]
        fn any_values_exist(s in any::<u64>(), b in any::<bool>()) {
            // Consume both to prove the strategies compose.
            prop_assert!(u64::MAX.checked_sub(s).is_some());
            prop_assert!(usize::from(b) <= 1);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = 0u64..=u64::MAX;
        assert_eq!(s.sample(&mut a), s.sample(&mut b));
    }
}
