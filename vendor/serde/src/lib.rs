//! Vendored, dependency-free stub of the [`serde`](https://serde.rs) API
//! surface this workspace uses, so it builds fully offline.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]` — nothing serializes through serde at runtime (the
//! `muzzle` CLI hand-renders its JSON/CSV reports). [`Serialize`] and
//! [`Deserialize`] are therefore marker traits here, and the derive macros
//! emit empty impls. Swapping this stub for the real `serde` in the
//! workspace manifest requires no source changes anywhere else.

// Lets the `::serde` paths the derive macros emit resolve inside this
// crate's own tests.
extern crate self as serde;

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

impl_markers!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, char, String);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for &T {}
impl<T: Serialize> Serialize for [T] {}
impl Serialize for str {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize};

    #[derive(Serialize, Deserialize)]
    struct Plain {
        _x: u32,
    }

    #[derive(Serialize, Deserialize)]
    struct Tuple(#[allow(dead_code)] u32, #[allow(dead_code)] f64);

    #[derive(Serialize, Deserialize)]
    enum Mixed {
        _Unit,
        _Tuple(u32),
        _Struct { _a: bool },
    }

    #[derive(Serialize, Deserialize)]
    pub(crate) struct Visible {
        #[serde(skip, default = "zero")]
        _y: u64,
    }

    fn zero() -> u64 {
        0
    }

    fn assert_impls<T: Serialize + Deserialize>() {}

    #[test]
    fn derives_produce_marker_impls() {
        assert_impls::<Plain>();
        assert_impls::<Tuple>();
        assert_impls::<Mixed>();
        assert_impls::<Visible>();
        assert_impls::<Vec<Plain>>();
        assert_impls::<(u32, bool)>();
        let _ = zero; // referenced by the serde attribute only
    }
}
