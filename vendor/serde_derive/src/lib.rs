//! Derive macros backing the workspace's vendored `serde` stub.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` emit the matching empty
//! marker impl for the annotated type. `#[serde(...)]` attributes are
//! accepted (and ignored) anywhere the real serde allows them, so sources
//! written against the real crate compile unchanged.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}

/// Emits `impl ::serde::<trait> for <Type> {}` for the struct/enum/union
/// named in `input`.
fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = type_name(input)
        .unwrap_or_else(|| panic!("#[derive({trait_name})] stub: could not find the type name"));
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl is valid Rust")
}

/// Extracts the identifier following the `struct` / `enum` / `union`
/// keyword. Generic types are rejected: the stub would need to replicate
/// the generics on the impl, and this workspace derives only on concrete
/// types.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next()? {
                    TokenTree::Ident(name) => name.to_string(),
                    _ => return None,
                };
                if let Some(TokenTree::Punct(p)) = tokens.next() {
                    if p.as_char() == '<' {
                        panic!(
                            "serde stub derive does not support generic type `{name}`; \
                             write the marker impl by hand or vendor the real serde"
                        );
                    }
                }
                return Some(name);
            }
        }
    }
    None
}
