//! # muzzle-shuttle
//!
//! Shuttle-efficient compilation for multi-trap trapped-ion (QCCD) quantum
//! computers — a reproduction of *Saki, Topaloglu, Ghosh, "Muzzle the
//! Shuttle: Efficient Compilation for Multi-Trap Trapped-Ion Quantum
//! Computers", DATE 2022* (arXiv:2111.07961).
//!
//! This umbrella crate re-exports the workspace's public API:
//!
//! * [`circuit`] — circuit IR, gate-dependency DAG, benchmark generators.
//! * [`machine`] — QCCD machine model: traps, topologies, shuttles, schedules.
//! * [`flow`] — graph substrate (shortest paths, min-cost max-flow).
//! * [`route`] — shuttle transport: congestion-aware route planning and
//!   concurrent transport scheduling (rounds of edge-disjoint shuttles).
//! * [`timing`] — device timing: per-operation duration models (uniform
//!   `ideal` and QCCDSim-style `realistic`) and the ASAP event-timeline
//!   scheduler with per-trap/per-edge resource validation.
//! * [`compiler`] — the paper's contribution: the shuttle-aware compiler with
//!   baseline (Murali et al., ISCA'20) and optimized (this paper) policies.
//! * [`pack`] — the timeline-driven transport optimizer: cross-gate round
//!   packing and batched multi-commodity layer planning, rewriting a
//!   compile result into a provably-equivalent one with lower timed
//!   makespan.
//! * [`sim`] — fidelity/timing simulator replaying compiled schedules on
//!   their timed event timelines.
//! * [`obs`] — structured compile telemetry: hierarchical phase spans,
//!   process-wide hot-path counters, and Chrome-trace export. Disabled by
//!   default at zero cost; instrumentation observes, never decides.
//!
//! # Quickstart
//!
//! ```
//! use muzzle_shuttle::circuit::generators::qft;
//! use muzzle_shuttle::compiler::{compile, CompilerConfig};
//! use muzzle_shuttle::machine::MachineSpec;
//! use muzzle_shuttle::sim::{simulate, SimParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = qft(16);
//! let machine = MachineSpec::linear(2, 17, 2)?; // 2 traps in a line
//! let baseline = compile(&circuit, &machine, &CompilerConfig::baseline())?;
//! let optimized = compile(&circuit, &machine, &CompilerConfig::optimized())?;
//! assert!(optimized.stats.shuttles <= baseline.stats.shuttles);
//!
//! let report = simulate(&optimized.schedule, &circuit, &machine, &SimParams::default())?;
//! assert!(report.program_fidelity > 0.0 && report.program_fidelity <= 1.0);
//!
//! # Ok(())
//! # }
//! ```

pub use qccd_circuit as circuit;
pub use qccd_core as compiler;
pub use qccd_flow as flow;
pub use qccd_machine as machine;
pub use qccd_obs as obs;
pub use qccd_pack as pack;
pub use qccd_route as route;
pub use qccd_sim as sim;
pub use qccd_timing as timing;

/// Convenience prelude importing the most common types.
pub mod prelude {
    pub use qccd_circuit::{Circuit, DependencyDag, Gate, GateId, Opcode, Qubit};
    pub use qccd_core::{compile, CompileResult, CompilerConfig, Objective, ScoreMode};
    pub use qccd_machine::{IonId, MachineSpec, MachineState, Schedule, TrapId, ZoneLayout};
    pub use qccd_pack::{compile_clock, compile_packed, pack, ClockStats, PackConfig, PackStats};
    pub use qccd_route::{RouterPolicy, TransportSchedule};
    pub use qccd_sim::{simulate, simulate_timed, simulate_transport, SimParams, SimReport};
    pub use qccd_timing::{DeltaScorer, LowerState, Timeline, TimingModel};
}
