//! Property tests for the routing subsystem: random circuits × {linear,
//! ring, grid, custom} topologies × both routers.
//!
//! Invariants checked on every sampled instance:
//!
//! 1. both routers' schedules pass full replay validation;
//! 2. the congestion router's round-packed transport schedule passes
//!    concurrent replay validation (edge-disjointness, junction limits,
//!    capacity after departures) and lands every ion where the serial
//!    replay does;
//! 3. both routers deliver **identical final ion→trap mappings** — the
//!    congestion router only deviates from the serial route when crossing
//!    a full trap is strictly cheaper than any detour, and on the sampled
//!    topologies (≤ 9 traps, detour excess < the default full-trap
//!    penalty of 6) that trade never wins, so emission must coincide;
//! 4. compilation is deterministic: compiling twice yields identical
//!    schedules and transport rounds.

use muzzle_shuttle::circuit::generators::random_circuit;
use muzzle_shuttle::compiler::{compile, CompilerConfig, RouterPolicy};
use muzzle_shuttle::machine::{
    MachineSpec, MachineState, Operation, Schedule, TrapId, TrapTopology,
};
use proptest::prelude::*;

/// Replays `schedule`'s shuttles and returns the final ion→trap mapping.
fn final_mapping(schedule: &Schedule, spec: &MachineSpec) -> Vec<TrapId> {
    let mut state =
        MachineState::with_mapping(spec, &schedule.initial_mapping).expect("mapping fits");
    for op in &schedule.operations {
        if let Operation::Shuttle { ion, to, .. } = *op {
            state.shuttle(ion, to).expect("validated schedule replays");
        }
    }
    (0..state.num_ions())
        .map(|i| state.trap_of(muzzle_shuttle::machine::IonId(i)))
        .collect()
}

/// Connected custom topology: a random spanning tree over `n` traps plus
/// arbitrary extra chords (deduplicated; never self-loops).
fn custom_topology(n: usize, tree_seed: &[usize], chords: &[(usize, usize)]) -> TrapTopology {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for v in 1..n {
        // Attach each node to a pseudo-random earlier node: connectivity
        // by construction.
        let parent = tree_seed[v % tree_seed.len()] % v;
        edges.push((parent as u32, v as u32));
    }
    for &(a, b) in chords {
        let (a, b) = (a % n, b % n);
        if a != b
            && !edges.contains(&(a as u32, b as u32))
            && !edges.contains(&(b as u32, a as u32))
        {
            edges.push((a as u32, b as u32));
        }
    }
    TrapTopology::try_custom(n as u32, &edges).expect("constructed edges are valid")
}

fn topology_strategy() -> impl Strategy<Value = TrapTopology> {
    prop_oneof![
        (2u32..=6).prop_map(TrapTopology::linear),
        (3u32..=9).prop_map(TrapTopology::ring),
        prop_oneof![
            Just(TrapTopology::grid(2, 2)),
            Just(TrapTopology::grid(2, 3)),
            Just(TrapTopology::grid(3, 3)),
        ],
        (
            4usize..=8,
            proptest::collection::vec(0usize..8, 4..8),
            proptest::collection::vec((0usize..8, 0usize..8), 0..6),
        )
            .prop_map(|(n, tree_seed, chords)| custom_topology(n, &tree_seed, &chords)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn routers_validate_and_agree_on_final_mappings(
        topology in topology_strategy(),
        qubits in 4u32..=12,
        gates in 1usize..=80,
        seed in any::<u64>(),
        baseline_policies in any::<bool>(),
    ) {
        // Size the machine so the circuit fits with slack on every
        // sampled topology (traps ≥ 2, comm 2).
        let traps = topology.num_traps();
        let comm = 2u32;
        let per_trap = qubits.div_ceil(traps) + 1;
        let spec = MachineSpec::new(topology, per_trap + comm, comm)
            .expect("constructed spec is valid");
        let circuit = random_circuit(qubits, gates, seed);
        let base = if baseline_policies {
            CompilerConfig::baseline()
        } else {
            CompilerConfig::optimized()
        };

        let serial = compile(&circuit, &spec, &base.with_router(RouterPolicy::Serial))
            .expect("serial router compiles");
        let congestion_config = base.with_router(RouterPolicy::congestion());
        let congestion = compile(&circuit, &spec, &congestion_config)
            .expect("congestion router compiles");

        // 1. Replay validation (compile() also validates internally).
        prop_assert!(serial.schedule.validate(&circuit, &spec).is_ok());
        prop_assert!(congestion.schedule.validate(&circuit, &spec).is_ok());

        // 2. Concurrent-round replay validation, and depth accounting.
        prop_assert!(congestion.transport.validate(&congestion.schedule, &spec).is_ok());
        prop_assert_eq!(congestion.transport.num_moves(), congestion.stats.shuttles);
        prop_assert!(congestion.stats.transport_depth <= congestion.stats.shuttles);
        prop_assert_eq!(serial.stats.transport_depth, serial.stats.shuttles);

        // 3. Identical final ion→trap mappings.
        prop_assert_eq!(
            final_mapping(&serial.schedule, &spec),
            final_mapping(&congestion.schedule, &spec)
        );

        // 4. Determinism across runs.
        let again = compile(&circuit, &spec, &congestion_config)
            .expect("congestion router compiles deterministically");
        prop_assert_eq!(again.schedule, congestion.schedule);
        prop_assert_eq!(again.transport, congestion.transport);
    }
}
