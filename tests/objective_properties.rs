//! Property tests for the timed compile-loop objective: random circuits
//! × {linear, ring, grid} topologies × all router stacks.
//!
//! Invariants checked on every sampled instance:
//!
//! 1. **Gate semantics** — a `--objective clock` compile passes the strict
//!    schedule validator (every gate exactly once, dependency order,
//!    co-located operands) and its transport rounds replay-validate, so
//!    the final mapping is exactly what the flat schedule's own replay
//!    produces — the same gate semantics the shuttle-count objective
//!    guarantees.
//! 2. **Replay equivalence** — packing a clock-objective result passes
//!    [`validate_equivalent`] (same gates in the same traps, identical
//!    final mapping) and never regresses the clock, i.e. the clock
//!    objective composes with the existing replay-equivalence machinery.
//! 3. **Speculative scoring is exact** — the fold the objective threads
//!    through the loop (checkpoint → score candidates → rollback → commit
//!    winner) ends *bit-for-bit equal* to a fresh transport-less full
//!    [`lower`] of the committed schedule: speculation never leaks into
//!    the committed state.
//! 4. **Pipeline never regresses** — `compile_clock`'s chosen result is
//!    never above the default-objective packed stack on the clock.

use muzzle_shuttle::circuit::generators::random_circuit;
use muzzle_shuttle::compiler::{compile, CompilerConfig, Objective, RouterPolicy};
use muzzle_shuttle::machine::{MachineSpec, TrapTopology};
use muzzle_shuttle::pack::{compile_clock, pack, validate_equivalent, PackConfig};
use muzzle_shuttle::timing::{lower, TimingModel};
use proptest::prelude::*;

fn topology_strategy() -> impl Strategy<Value = TrapTopology> {
    prop_oneof![
        (2u32..=6).prop_map(TrapTopology::linear),
        (3u32..=8).prop_map(TrapTopology::ring),
        prop_oneof![
            Just(TrapTopology::grid(2, 2)),
            Just(TrapTopology::grid(2, 3)),
            Just(TrapTopology::grid(3, 3)),
        ],
    ]
}

/// The three router stacks: serial, congestion, congestion + lookahead.
fn router_stack(selector: usize) -> (RouterPolicy, bool) {
    match selector % 3 {
        0 => (RouterPolicy::Serial, false),
        1 => (RouterPolicy::congestion(), false),
        _ => (RouterPolicy::congestion(), true),
    }
}

fn spec_for(topology: TrapTopology, qubits: u32) -> MachineSpec {
    let traps = topology.num_traps();
    let comm = 2u32;
    let per_trap = qubits.div_ceil(traps) + 1;
    MachineSpec::new(topology, per_trap + comm, comm).expect("constructed spec is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn clock_objective_keeps_gate_semantics_and_scores_exactly(
        topology in topology_strategy(),
        qubits in 4u32..=12,
        gates in 1usize..=60,
        seed in any::<u64>(),
        router_sel in 0usize..3,
        realistic in any::<bool>(),
    ) {
        let (router, lookahead) = router_stack(router_sel);
        let spec = spec_for(topology, qubits);
        let circuit = random_circuit(qubits, gates, seed);
        let model = if realistic {
            TimingModel::realistic()
        } else {
            TimingModel::ideal()
        };
        let config = CompilerConfig::optimized()
            .with_router(router)
            .with_lookahead(lookahead)
            .with_timing(model)
            .with_objective(Objective::Clock);
        let result = compile(&circuit, &spec, &config).expect("clock compile fits machine");

        // (1) Gate semantics: the strict schedule validator replays every
        // gate in dependency order with co-located operands — the same
        // contract the shuttle-count objective's results satisfy — and
        // the transport rounds replay to the identical final mapping.
        result
            .schedule
            .validate(&circuit, &spec)
            .expect("clock schedules keep strict gate semantics");
        result
            .transport
            .validate_relaxed(&result.schedule, &spec)
            .expect("clock transport rounds replay-validate");
        prop_assert_eq!(result.stats.gate_ops, circuit.len());

        // (3) The threaded checkpoint/score/rollback fold is bit-for-bit
        // a fresh transport-less full lower of the committed schedule.
        let fresh = lower(&result.schedule, None, &circuit, &spec, &model)
            .expect("committed schedules lower");
        let threaded = result
            .clock_serial_makespan_us
            .expect("clock objective records its fold");
        prop_assert_eq!(
            threaded.to_bits(),
            fresh.makespan_us.to_bits(),
            "threaded fold {} != fresh lower {}",
            threaded,
            fresh.makespan_us
        );

        // The default objective records no fold and must stay decoupled.
        let default_cfg = config.with_objective(Objective::Shuttles);
        let default_result =
            compile(&circuit, &spec, &default_cfg).expect("default compile fits machine");
        prop_assert_eq!(default_result.clock_serial_makespan_us, None);

        // (2) Replay equivalence: the pack validators accept the clock
        // result exactly as they accept shuttle-objective results.
        let packed = pack(&result, &circuit, &spec, &PackConfig::for_model(model))
            .expect("packing validates on clock-objective schedules");
        validate_equivalent(&result.schedule, &packed.schedule, &circuit, &spec)
            .expect("packed clock schedule must be replay-equivalent");
        packed
            .transport
            .validate(&packed.schedule, &spec)
            .expect("packed clock rounds must strict-validate");
        prop_assert!(packed.stats.packed_makespan_us <= packed.stats.input_makespan_us);
    }

    #[test]
    fn clock_pipeline_never_regresses_the_packed_stack(
        topology in topology_strategy(),
        qubits in 4u32..=10,
        gates in 1usize..=50,
        seed in any::<u64>(),
        realistic in any::<bool>(),
    ) {
        let spec = spec_for(topology, qubits);
        let circuit = random_circuit(qubits, gates, seed);
        let model = if realistic {
            TimingModel::realistic()
        } else {
            TimingModel::ideal()
        };
        let config = CompilerConfig::optimized().with_timing(model);
        let (result, stats) =
            compile_clock(&circuit, &spec, &config).expect("clock pipeline compiles");
        // (4) Never regress, and the chosen result is the chosen score.
        prop_assert!(stats.chosen_makespan_us <= stats.packed_makespan_us);
        prop_assert_eq!(result.timeline.makespan_us, stats.chosen_makespan_us);
        prop_assert_eq!(stats.improved, stats.clock_makespan_us < stats.packed_makespan_us);
        // The chosen result is fully validated whichever candidate won.
        result
            .schedule
            .validate(&circuit, &spec)
            .expect("chosen schedule validates");
        result
            .transport
            .validate_relaxed(&result.schedule, &spec)
            .expect("chosen transport validates");
        result.timeline.validate().expect("chosen timeline validates");
    }
}
