//! Property tests for the delta scorer ([`DeltaScorer`]): random circuits
//! × {linear, ring, grid} topologies × {ideal, realistic} timing.
//!
//! Invariants checked on every sampled instance:
//!
//! 1. **Delta == oracle at every decision point** — replaying the
//!    optimized compiler's own committed schedule through a
//!    [`DeltaScorer`], every sampled candidate suffix (legal and illegal)
//!    prices *bit-for-bit* identically on the O(delta) path and on the
//!    O(suffix) clone-and-re-lower oracle ([`LowerState::score_ops`] on
//!    the committed fold).
//! 2. **apply+undo is traceless** — scoring a candidate twice returns the
//!    identical projection, and the committed fold's makespan never moves
//!    under speculation; after the full replay the fold equals a fresh
//!    transport-less [`lower`] of the whole schedule.
//! 3. **Mode equivalence end to end** — a clock-objective compile under
//!    `--score-mode delta` produces the *same schedule, stats and
//!    threaded fold* as one under `--score-mode full`.
//!
//! [`DeltaScorer`]: muzzle_shuttle::timing::DeltaScorer
//! [`LowerState::score_ops`]: muzzle_shuttle::timing::LowerState::score_ops
//! [`lower`]: muzzle_shuttle::timing::lower

use muzzle_shuttle::circuit::generators::random_circuit;
use muzzle_shuttle::compiler::{compile, CompilerConfig, Objective, ScoreMode};
use muzzle_shuttle::machine::{IonId, MachineSpec, Operation, TrapTopology};
use muzzle_shuttle::timing::{lower, DeltaScorer, TimingModel};
use proptest::prelude::*;

fn topology_strategy() -> impl Strategy<Value = TrapTopology> {
    prop_oneof![
        (2u32..=6).prop_map(TrapTopology::linear),
        (3u32..=8).prop_map(TrapTopology::ring),
        prop_oneof![
            Just(TrapTopology::grid(2, 2)),
            Just(TrapTopology::grid(2, 3)),
            Just(TrapTopology::grid(3, 3)),
        ],
    ]
}

fn spec_for(topology: TrapTopology, qubits: u32) -> MachineSpec {
    let traps = topology.num_traps();
    let comm = 2u32;
    let per_trap = qubits.div_ceil(traps) + 1;
    MachineSpec::new(topology, per_trap + comm, comm).expect("constructed spec is valid")
}

/// Candidate suffixes sampled from the live machine state: for a few
/// ions, every single-hop walk out of their current trap plus every
/// two-hop extension — a mix of legal walks, full-destination walks and
/// bounce-backs (two-hop extensions returning to the source trap price
/// `None` on both paths).
fn sample_candidates(scorer: &DeltaScorer, seed: u64) -> Vec<Vec<Operation>> {
    let machine = scorer.state().machine();
    let topology = machine.spec().topology().clone();
    let num_ions = machine.num_ions();
    let mut candidates: Vec<Vec<Operation>> = vec![vec![]];
    for k in 0..3u32.min(num_ions) {
        let ion = IonId((seed as u32).wrapping_add(k.wrapping_mul(7)) % num_ions);
        let at = machine.trap_of(ion);
        for mid in topology.neighbors(at) {
            candidates.push(vec![Operation::Shuttle {
                ion,
                from: at,
                to: mid,
            }]);
            for far in topology.neighbors(mid) {
                candidates.push(vec![
                    Operation::Shuttle {
                        ion,
                        from: at,
                        to: mid,
                    },
                    Operation::Shuttle {
                        ion,
                        from: mid,
                        to: far,
                    },
                ]);
            }
        }
    }
    candidates
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn delta_equals_oracle_at_every_decision_point(
        topology in topology_strategy(),
        qubits in 4u32..=10,
        gates in 1usize..=40,
        seed in any::<u64>(),
        realistic in any::<bool>(),
    ) {
        let spec = spec_for(topology, qubits);
        let circuit = random_circuit(qubits, gates, seed);
        let model = if realistic {
            TimingModel::realistic()
        } else {
            TimingModel::ideal()
        };
        // A realistic stream of decision points: the optimized compiler's
        // own committed operations, replayed one at a time.
        let result = compile(
            &circuit,
            &spec,
            &CompilerConfig::optimized().with_timing(model),
        )
        .expect("random circuits fit the constructed machine");
        let mut scorer = DeltaScorer::new(&result.schedule.initial_mapping, &spec, &model)
            .expect("initial mappings lower");
        for op in &result.schedule.operations {
            let candidates = sample_candidates(&scorer, seed);
            let before = scorer.makespan_us();
            for ops in &candidates {
                // (1) Bit-for-bit oracle parity at this decision point.
                let oracle = scorer.state().score_ops(ops, &circuit, &spec);
                let first = scorer.score_ops(ops, &circuit, &spec);
                prop_assert_eq!(
                    first.map(f64::to_bits),
                    oracle.map(f64::to_bits),
                    "candidate {:?} diverged from the oracle",
                    ops
                );
                // (2) apply+undo is traceless: identical re-score,
                // untouched committed fold.
                let second = scorer.score_ops(ops, &circuit, &spec);
                prop_assert_eq!(first.map(f64::to_bits), second.map(f64::to_bits));
                prop_assert_eq!(scorer.makespan_us().to_bits(), before.to_bits());
            }
            scorer
                .commit(op, &circuit, &spec)
                .expect("committed schedules replay through the fold");
        }
        // The replayed fold is exactly a fresh transport-less lower of
        // the whole schedule.
        let fresh = lower(&result.schedule, None, &circuit, &spec, &model)
            .expect("committed schedules lower");
        prop_assert_eq!(scorer.makespan_us().to_bits(), fresh.makespan_us.to_bits());
    }

    #[test]
    fn clock_compiles_identically_under_both_score_modes(
        topology in topology_strategy(),
        qubits in 4u32..=10,
        gates in 1usize..=50,
        seed in any::<u64>(),
        realistic in any::<bool>(),
    ) {
        let spec = spec_for(topology, qubits);
        let circuit = random_circuit(qubits, gates, seed);
        let model = if realistic {
            TimingModel::realistic()
        } else {
            TimingModel::ideal()
        };
        let base = CompilerConfig::optimized()
            .with_timing(model)
            .with_objective(Objective::Clock);
        let delta = compile(&circuit, &spec, &base.with_score_mode(ScoreMode::Delta))
            .expect("clock compiles under the delta scorer");
        let full = compile(&circuit, &spec, &base.with_score_mode(ScoreMode::Full))
            .expect("clock compiles under the full oracle");
        // (3) Same operations, same stats (including ties broken and
        // candidates priced), same threaded fold — the modes are
        // interchangeable everywhere, not just on the paper suite.
        prop_assert_eq!(&delta.schedule, &full.schedule);
        prop_assert_eq!(delta.stats, full.stats);
        prop_assert_eq!(
            delta.clock_serial_makespan_us.map(f64::to_bits),
            full.clock_serial_makespan_us.map(f64::to_bits)
        );
    }
}
