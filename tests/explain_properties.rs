//! Property tests for the schedule-explanation layer: critical-path
//! extraction and makespan attribution over compiled timelines on
//! {linear, ring, grid} topologies under both timing models.
//!
//! Invariants checked on every sampled instance:
//!
//! 1. **Contiguity** — the critical path starts at t = 0 with
//!    [`Blame::Start`], consecutive steps touch bit-for-bit, only the
//!    first step carries `Start`, and the chain ends at the timeline's
//!    latest event end (which defines the makespan).
//! 2. **Attribution identity** — the six attribution segments summed in
//!    fixed order equal the timeline's `makespan_us` *bit-for-bit*, not
//!    approximately.
//! 3. **Report sanity** — per-trap and per-edge utilization lie in
//!    [0, 1], trap reports cover every trap in index order, and no
//!    trap's busy time exceeds the makespan.

use muzzle_shuttle::circuit::generators::random_circuit;
use muzzle_shuttle::compiler::{compile, CompilerConfig, RouterPolicy};
use muzzle_shuttle::machine::{MachineSpec, TrapTopology};
use muzzle_shuttle::timing::{
    attribute_path, critical_path, edge_reports, lower, trap_reports, Blame, CriticalPath,
    Timeline, TimingModel,
};
use proptest::prelude::*;

fn topology_strategy() -> impl Strategy<Value = TrapTopology> {
    prop_oneof![
        (2u32..=6).prop_map(TrapTopology::linear),
        (3u32..=8).prop_map(TrapTopology::ring),
        prop_oneof![
            Just(TrapTopology::grid(2, 2)),
            Just(TrapTopology::grid(2, 3)),
            Just(TrapTopology::grid(3, 3)),
        ],
    ]
}

/// The structural invariants every extracted path must satisfy; returns
/// an error string so both the proptest and the deterministic tests can
/// share it.
fn check_path(timeline: &Timeline, path: &CriticalPath) -> Result<(), String> {
    if timeline.events.is_empty() {
        return if path.steps.is_empty() {
            Ok(())
        } else {
            Err("empty timeline produced a non-empty path".to_owned())
        };
    }
    if path.steps.is_empty() {
        return Err("non-empty timeline produced an empty path".to_owned());
    }
    if !path.is_contiguous() {
        return Err("path is not contiguous".to_owned());
    }
    let first = path.steps.first().expect("non-empty");
    if first.start_us != 0.0 || first.blame != Blame::Start || first.bound_by.is_some() {
        return Err(format!(
            "first step must start at t=0 with Start blame, got {first:?}"
        ));
    }
    if path.steps[1..].iter().any(|s| s.blame == Blame::Start) {
        return Err("only the first step may carry Start blame".to_owned());
    }
    let last = path.steps.last().expect("non-empty");
    if last.end_us.to_bits() != timeline.makespan_us.to_bits() {
        return Err(format!(
            "path must end at the makespan: {} vs {}",
            last.end_us, timeline.makespan_us
        ));
    }
    for step in &path.steps {
        let event = &timeline.events[step.event];
        if step.start_us.to_bits() != event.start_us().to_bits()
            || step.end_us.to_bits() != event.end_us().to_bits()
        {
            return Err(format!(
                "step window diverged from its event: {step:?} vs [{}, {}]",
                event.start_us(),
                event.end_us()
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn critical_path_and_attribution_hold_on_all_topologies(
        topology in topology_strategy(),
        qubits in 4u32..=12,
        gates in 1usize..=60,
        seed in any::<u64>(),
        congestion in any::<bool>(),
        realistic in any::<bool>(),
    ) {
        let traps = topology.num_traps();
        let comm = 2u32;
        let per_trap = qubits.div_ceil(traps) + 1;
        let spec = MachineSpec::new(topology, per_trap + comm, comm)
            .expect("constructed spec is valid");
        let circuit = random_circuit(qubits, gates, seed);
        let router = if congestion {
            RouterPolicy::congestion()
        } else {
            RouterPolicy::Serial
        };
        let model = if realistic {
            TimingModel::realistic()
        } else {
            TimingModel::ideal()
        };
        let config = CompilerConfig::optimized().with_router(router);
        let result = compile(&circuit, &spec, &config).expect("benchmark fits machine");
        let timeline = lower(
            &result.schedule,
            Some(&result.transport),
            &circuit,
            &spec,
            &model,
        )
        .expect("compiled schedules lower");

        // 1. Contiguity and chain structure.
        let path = critical_path(&timeline, &circuit);
        if let Err(msg) = check_path(&timeline, &path) {
            prop_assert!(false, "{}", msg);
        }

        // 2. The bit-for-bit attribution identity.
        let attribution = attribute_path(&timeline, &model, &path);
        prop_assert_eq!(
            attribution.total_us().to_bits(),
            timeline.makespan_us.to_bits(),
            "segments {:?} must sum exactly to the makespan {}",
            attribution.segments(),
            timeline.makespan_us
        );

        // 3. Utilization reports stay within physical bounds.
        let traps = trap_reports(&timeline, spec.num_traps() as usize);
        prop_assert_eq!(traps.len(), spec.num_traps() as usize);
        for (i, t) in traps.iter().enumerate() {
            prop_assert_eq!(t.trap.index(), i);
            prop_assert!((0.0..=1.0).contains(&t.utilization));
            prop_assert!(t.busy_us <= timeline.makespan_us + 1e-9);
        }
        for e in edge_reports(&timeline) {
            prop_assert!((0.0..=1.0).contains(&e.utilization));
            prop_assert!(e.rounds > 0);
        }
    }
}

/// The paper's own machine shape: the critical path of a QFT compile on
/// the L6 spec must blame at least one non-`Start` resource (a 16-qubit
/// QFT cannot be a single-trap, zero-wait program on six 17-ion traps).
#[test]
fn qft_on_paper_machine_blames_real_resources() {
    let circuit = muzzle_shuttle::circuit::generators::qft(16);
    let spec = MachineSpec::paper_l6();
    let config = CompilerConfig::optimized().with_router(RouterPolicy::congestion());
    let result = compile(&circuit, &spec, &config).expect("QFT compiles on the paper machine");
    let model = TimingModel::realistic();
    let timeline = lower(
        &result.schedule,
        Some(&result.transport),
        &circuit,
        &spec,
        &model,
    )
    .expect("compiled schedules lower");
    let path = critical_path(&timeline, &circuit);
    check_path(&timeline, &path).expect("chain invariants hold");
    let attribution = attribute_path(&timeline, &model, &path);
    assert_eq!(
        attribution.total_us().to_bits(),
        timeline.makespan_us.to_bits()
    );
    assert!(attribution.gate_us > 0.0, "gates must appear on the path");
    let bound_steps: usize = path
        .blame_counts()
        .iter()
        .filter(|(b, _)| *b != Blame::Start)
        .map(|(_, n)| n)
        .sum();
    assert!(
        bound_steps > 0,
        "a multi-trap program's path must be bound by real resources"
    );
}
