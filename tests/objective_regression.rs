//! Regression pins for the default (shuttle-count) objective: the five
//! paper benchmarks must reproduce the `BENCH_pr4.json` serial, congestion,
//! lookahead and packed rows *exactly* — shuttle counts, transport depths,
//! and timed makespans under the realistic device model — so the timed
//! compile-loop objective (PR 5) provably cannot perturb existing
//! behaviour, and the shared round-backfill core provably reproduces both
//! packers' PR 4 outputs unchanged.

use muzzle_shuttle::compiler::{compile, CompilerConfig, RouterPolicy};
use muzzle_shuttle::machine::MachineSpec;
use muzzle_shuttle::pack::compile_packed;
use muzzle_shuttle::route::TransportSchedule;
use muzzle_shuttle::timing::TimingModel;
use qccd_circuit::generators::paper_suite;

/// One benchmark's pinned `BENCH_pr4.json` row (realistic timing).
struct Pin {
    name: &'static str,
    baseline_shuttles: usize,
    optimized_shuttles: usize,
    serial_makespan_us: f64,
    congestion_shuttles: usize,
    congestion_depth: usize,
    congestion_makespan_us: f64,
    greedy_depth: usize,
    lookahead_depth: usize,
    lookahead_makespan_us: f64,
    packed_shuttles: usize,
    packed_depth: usize,
    packed_makespan_us: f64,
}

/// The `BENCH_pr4.json` rows, verbatim.
const PINS: [Pin; 5] = [
    Pin {
        name: "Supremacy",
        baseline_shuttles: 582,
        optimized_shuttles: 356,
        serial_makespan_us: 119045.0,
        congestion_shuttles: 356,
        congestion_depth: 347,
        congestion_makespan_us: 118785.0,
        greedy_depth: 347,
        lookahead_depth: 347,
        lookahead_makespan_us: 118785.0,
        packed_shuttles: 356,
        packed_depth: 329,
        packed_makespan_us: 117035.0,
    },
    Pin {
        name: "QAOA",
        baseline_shuttles: 2251,
        optimized_shuttles: 1337,
        serial_makespan_us: 367830.0,
        congestion_shuttles: 1337,
        congestion_depth: 1336,
        congestion_makespan_us: 367830.0,
        greedy_depth: 1336,
        lookahead_depth: 1335,
        lookahead_makespan_us: 368090.0,
        packed_shuttles: 1337,
        packed_depth: 1091,
        packed_makespan_us: 351095.0,
    },
    Pin {
        name: "SquareRoot",
        baseline_shuttles: 1301,
        optimized_shuttles: 568,
        serial_makespan_us: 228585.0,
        congestion_shuttles: 568,
        congestion_depth: 561,
        congestion_makespan_us: 228585.0,
        greedy_depth: 561,
        lookahead_depth: 561,
        lookahead_makespan_us: 228585.0,
        packed_shuttles: 568,
        packed_depth: 508,
        packed_makespan_us: 228150.0,
    },
    Pin {
        name: "QFT",
        baseline_shuttles: 311,
        optimized_shuttles: 294,
        serial_makespan_us: 429585.0,
        congestion_shuttles: 294,
        congestion_depth: 287,
        congestion_makespan_us: 428545.0,
        greedy_depth: 287,
        lookahead_depth: 287,
        lookahead_makespan_us: 428545.0,
        packed_shuttles: 294,
        packed_depth: 287,
        packed_makespan_us: 428545.0,
    },
    Pin {
        name: "QuadraticForm",
        baseline_shuttles: 1062,
        optimized_shuttles: 450,
        serial_makespan_us: 583765.0,
        congestion_shuttles: 450,
        congestion_depth: 439,
        congestion_makespan_us: 582465.0,
        greedy_depth: 439,
        lookahead_depth: 439,
        lookahead_makespan_us: 582465.0,
        packed_shuttles: 450,
        packed_depth: 439,
        packed_makespan_us: 582465.0,
    },
];

/// The default objective's serial, congestion, lookahead and packed rows
/// are bit-for-bit the `BENCH_pr4.json` rows. This test failing means the
/// clock objective leaked into the default pipeline — exactly what it
/// exists to catch. It also pins the shared round-backfill core: the
/// lookahead packer (departure-credit rules) and the cross-gate packer
/// (no-credit + gate fences, inside `compile_packed`) must reproduce
/// their pre-refactor outputs on the whole paper suite, unchanged.
#[test]
fn default_objective_rows_match_bench_pr4_exactly() {
    let spec = MachineSpec::paper_l6();
    let model = TimingModel::realistic();
    for (bench, pin) in paper_suite().iter().zip(&PINS) {
        assert_eq!(bench.name, pin.name, "suite order changed");

        // Serial rows (paper parity).
        let base = compile(
            &bench.circuit,
            &spec,
            &CompilerConfig::baseline().with_timing(model),
        )
        .expect("baseline compiles");
        assert_eq!(base.stats.shuttles, pin.baseline_shuttles, "{}", pin.name);
        let serial = compile(
            &bench.circuit,
            &spec,
            &CompilerConfig::optimized().with_timing(model),
        )
        .expect("optimized compiles");
        assert_eq!(
            serial.stats.shuttles, pin.optimized_shuttles,
            "{}",
            pin.name
        );
        assert_eq!(
            serial.timeline.makespan_us, pin.serial_makespan_us,
            "{}: serial timed makespan drifted",
            pin.name
        );

        // Congestion row (greedy in-run rounds).
        let cong = compile(
            &bench.circuit,
            &spec,
            &CompilerConfig::optimized()
                .with_router(RouterPolicy::congestion())
                .with_timing(model),
        )
        .expect("congestion compiles");
        assert_eq!(cong.stats.shuttles, pin.congestion_shuttles, "{}", pin.name);
        assert_eq!(
            cong.stats.transport_depth, pin.congestion_depth,
            "{}: greedy depth drifted",
            pin.name
        );
        assert_eq!(
            cong.timeline.makespan_us, pin.congestion_makespan_us,
            "{}: congestion timed makespan drifted",
            pin.name
        );

        // Shared-backfill-core equivalence, packer one: greedy vs
        // lookahead depths of the lookahead-compiled schedule.
        let look = compile(
            &bench.circuit,
            &spec,
            &CompilerConfig::optimized()
                .with_router(RouterPolicy::congestion())
                .with_lookahead(true)
                .with_timing(model),
        )
        .expect("lookahead compiles");
        let greedy = TransportSchedule::pack_concurrent(&look.schedule, &spec)
            .expect("compiled schedules repack");
        assert_eq!(greedy.depth(), pin.greedy_depth, "{}", pin.name);
        assert_eq!(
            look.stats.transport_depth, pin.lookahead_depth,
            "{}: lookahead depth drifted",
            pin.name
        );

        // Shared-backfill-core equivalence, packer two: the cross-gate
        // packer inside compile_packed, plus the packed makespans.
        let (packed, pack_stats) = compile_packed(
            &bench.circuit,
            &spec,
            &CompilerConfig::optimized()
                .with_router(RouterPolicy::congestion())
                .with_timing(model),
        )
        .expect("packed stack compiles");
        assert_eq!(packed.stats.shuttles, pin.packed_shuttles, "{}", pin.name);
        assert_eq!(
            packed.stats.transport_depth, pin.packed_depth,
            "{}: packed depth drifted",
            pin.name
        );
        assert_eq!(
            pack_stats.input_makespan_us, pin.lookahead_makespan_us,
            "{}: lookahead timed makespan drifted",
            pin.name
        );
        assert_eq!(
            pack_stats.packed_makespan_us, pin.packed_makespan_us,
            "{}: packed timed makespan drifted",
            pin.name
        );
    }
}
