//! Property tests for the timing subsystem: random circuits × {linear,
//! ring, grid} topologies × both routers, lowered onto timed event
//! timelines.
//!
//! Invariants checked on every sampled instance:
//!
//! 1. **Timeline validity** — no two events overlap on any trap or any
//!    shuttle-path segment resource, under both the ideal and realistic
//!    timing models ([`Timeline::validate`]).
//! 2. **Ideal parity** — the ideal timeline's makespan equals the
//!    simulator's `makespan_us` *exactly* (the simulator consumes the same
//!    timeline; the equality is bit-for-bit, not approximate), and matches
//!    the compile-time timeline attached to the `CompileResult`.
//! 3. **Realistic monotonicity** — the realistic makespan never decreases
//!    when any duration constant grows, and never increases when the
//!    transport speed grows.

use muzzle_shuttle::circuit::generators::random_circuit;
use muzzle_shuttle::compiler::{compile, CompilerConfig, RouterPolicy};
use muzzle_shuttle::machine::{MachineSpec, TrapTopology};
use muzzle_shuttle::sim::{simulate_timed, SimParams};
use muzzle_shuttle::timing::{lower, TimingModel};
use proptest::prelude::*;

fn topology_strategy() -> impl Strategy<Value = TrapTopology> {
    prop_oneof![
        (2u32..=6).prop_map(TrapTopology::linear),
        (3u32..=8).prop_map(TrapTopology::ring),
        prop_oneof![
            Just(TrapTopology::grid(2, 2)),
            Just(TrapTopology::grid(2, 3)),
            Just(TrapTopology::grid(3, 3)),
        ],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn timelines_validate_and_ideal_matches_simulator(
        topology in topology_strategy(),
        qubits in 4u32..=12,
        gates in 1usize..=60,
        seed in any::<u64>(),
        congestion in any::<bool>(),
    ) {
        let traps = topology.num_traps();
        let comm = 2u32;
        let per_trap = qubits.div_ceil(traps) + 1;
        let spec = MachineSpec::new(topology, per_trap + comm, comm)
            .expect("constructed spec is valid");
        let circuit = random_circuit(qubits, gates, seed);
        let router = if congestion {
            RouterPolicy::congestion()
        } else {
            RouterPolicy::Serial
        };
        let config = CompilerConfig::optimized().with_router(router);
        let result = compile(&circuit, &spec, &config).expect("benchmark fits machine");

        // 1. Timeline validity under both models: no trap or segment is
        //    ever double-booked.
        let ideal = lower(
            &result.schedule,
            Some(&result.transport),
            &circuit,
            &spec,
            &TimingModel::ideal(),
        )
        .expect("compiled schedules lower");
        prop_assert!(ideal.validate().is_ok());
        let realistic = lower(
            &result.schedule,
            Some(&result.transport),
            &circuit,
            &spec,
            &TimingModel::realistic(),
        )
        .expect("compiled schedules lower");
        prop_assert!(realistic.validate().is_ok());

        // 2. Ideal parity: timeline makespan == simulator makespan,
        //    bit-for-bit, and == the compile-time timeline.
        let params = SimParams::default();
        let report = simulate_timed(
            &result.schedule,
            &result.transport,
            &circuit,
            &spec,
            &params,
            &TimingModel::ideal(),
        )
        .expect("compiled schedules simulate");
        prop_assert_eq!(ideal.makespan_us, report.makespan_us);
        prop_assert_eq!(ideal.makespan_us, report.timed_makespan_us);
        prop_assert_eq!(ideal.makespan_us, result.timeline.makespan_us);
        prop_assert_eq!(ideal.shuttles, report.shuttles);
        prop_assert_eq!(ideal.shuttle_depth, report.shuttle_depth);

        // The legacy uniform-hop replay is the same number again.
        let legacy = muzzle_shuttle::sim::simulate_transport(
            &result.schedule,
            &result.transport,
            &circuit,
            &spec,
            &params,
        )
        .expect("compiled schedules simulate");
        prop_assert_eq!(legacy.makespan_us, ideal.makespan_us);

        // 3. Realistic makespan is monotone in every duration constant
        //    (never decreases when an operation slows down), and antitone
        //    in the transport speed.
        let base = TimingModel::realistic();
        let base_makespan = realistic.makespan_us;
        let makespan_with = |model: &TimingModel| {
            lower(
                &result.schedule,
                Some(&result.transport),
                &circuit,
                &spec,
                model,
            )
            .expect("compiled schedules lower")
            .makespan_us
        };
        for bump in [
            |m: &mut TimingModel| m.one_qubit_gate_us *= 1.5,
            |m: &mut TimingModel| m.two_qubit_gate_base_us *= 1.5,
            |m: &mut TimingModel| m.gate_chain_slowdown *= 1.5,
            |m: &mut TimingModel| m.split_us *= 1.5,
            |m: &mut TimingModel| m.merge_us *= 1.5,
            |m: &mut TimingModel| m.segment_um *= 1.5,
            |m: &mut TimingModel| m.junction_cross_us *= 1.5,
            |m: &mut TimingModel| m.zone_move_us *= 1.5,
        ] {
            let mut model = base;
            bump(&mut model);
            prop_assert!(
                makespan_with(&model) >= base_makespan,
                "slowing an operation must not shrink the makespan"
            );
        }
        let mut faster = base;
        faster.speed_um_per_us *= 2.0;
        prop_assert!(
            makespan_with(&faster) <= base_makespan,
            "faster transport must not stretch the makespan"
        );
    }
}

/// Junction sensitivity, deterministically: the same compiled schedule
/// costs strictly more under the realistic model on a grid (which has
/// T-/X-junctions) than the ideal model says, and the realistic makespan
/// differs from ideal on ring topologies too (finite segment speed).
#[test]
fn realistic_model_is_junction_sensitive_on_grid_and_ring() {
    let params = SimParams::default();
    for topology in [TrapTopology::grid(2, 3), TrapTopology::ring(6)] {
        let junctions_exist = (0..topology.num_traps())
            .any(|t| topology.is_junction(muzzle_shuttle::machine::TrapId(t)));
        let spec = MachineSpec::new(topology, 8, 2).expect("valid spec");
        let circuit = random_circuit(16, 120, 7);
        let result = compile(
            &circuit,
            &spec,
            &CompilerConfig::optimized().with_router(RouterPolicy::congestion()),
        )
        .expect("fits");
        let run = |model: &TimingModel| {
            simulate_timed(
                &result.schedule,
                &result.transport,
                &circuit,
                &spec,
                &params,
                model,
            )
            .expect("simulates")
        };
        let ideal = run(&TimingModel::ideal());
        let realistic = run(&TimingModel::realistic());
        assert!(
            realistic.timed_makespan_us > ideal.timed_makespan_us,
            "realistic must strictly differ on {spec}"
        );
        if junctions_exist {
            assert!(
                realistic.junction_crossings > 0,
                "grid transport must cross junctions on {spec}"
            );
            // Junction corners specifically (not just slower segments):
            // zeroing the corner cost must strictly shrink the makespan.
            let mut cornerless = TimingModel::realistic();
            cornerless.junction_cross_us = 0.0;
            assert!(
                run(&cornerless).timed_makespan_us < realistic.timed_makespan_us,
                "junction corner time must be on the critical path of {spec}"
            );
        }
    }
}
