//! End-to-end integration tests: circuits → compiler → schedule →
//! validation → simulation, across crates.

use muzzle_shuttle::circuit::generators::{
    qaoa, qft, quadratic_form, random_circuit, square_root, supremacy,
};
use muzzle_shuttle::circuit::Circuit;
use muzzle_shuttle::compiler::{compile, CompileError, CompilerConfig};
use muzzle_shuttle::machine::MachineSpec;
use muzzle_shuttle::sim::{simulate, SimParams};

/// Scaled-down versions of the paper's benchmarks that compile in
/// milliseconds but exercise every pattern.
fn mini_suite() -> Vec<(&'static str, Circuit)> {
    vec![
        ("supremacy", supremacy(4, 4, 12)),
        ("qaoa", qaoa(16, 4, 3)),
        ("square_root", square_root(16, 3)),
        ("qft", qft(16)),
        ("quadratic_form", quadratic_form(16, 200)),
        ("random", random_circuit(18, 200, 9)),
    ]
}

#[test]
fn every_benchmark_compiles_and_validates_under_both_configs() {
    let spec = MachineSpec::linear(3, 8, 2).unwrap();
    for (name, circuit) in mini_suite() {
        for config in [CompilerConfig::baseline(), CompilerConfig::optimized()] {
            let result =
                compile(&circuit, &spec, &config).unwrap_or_else(|e| panic!("{name}: {e}"));
            // compile() already replay-validates; double-check the counts.
            assert_eq!(result.stats.gate_ops, circuit.len(), "{name}");
            assert_eq!(
                result.schedule.stats().shuttles,
                result.stats.shuttles,
                "{name}"
            );
            result.schedule.validate(&circuit, &spec).unwrap();
        }
    }
}

#[test]
fn optimized_never_loses_badly_and_usually_wins() {
    let spec = MachineSpec::linear(3, 8, 2).unwrap();
    let mut wins = 0usize;
    let mut total = 0usize;
    for (name, circuit) in mini_suite() {
        let base = compile(&circuit, &spec, &CompilerConfig::baseline()).unwrap();
        let opt = compile(&circuit, &spec, &CompilerConfig::optimized()).unwrap();
        total += 1;
        if opt.stats.shuttles < base.stats.shuttles {
            wins += 1;
        }
        // The optimized compiler must never be drastically worse.
        assert!(
            (opt.stats.shuttles as f64) < 1.25 * base.stats.shuttles.max(4) as f64,
            "{name}: optimized {} vs baseline {}",
            opt.stats.shuttles,
            base.stats.shuttles
        );
    }
    assert!(
        wins * 3 >= total * 2,
        "optimized should win on at least 2/3 of the mini suite ({wins}/{total})"
    );
}

#[test]
fn simulation_agrees_with_compile_stats() {
    let spec = MachineSpec::linear(3, 8, 2).unwrap();
    let params = SimParams::default();
    for (name, circuit) in mini_suite() {
        let result = compile(&circuit, &spec, &CompilerConfig::optimized()).unwrap();
        let report = simulate(&result.schedule, &circuit, &spec, &params).unwrap();
        assert_eq!(report.gates, circuit.len(), "{name}");
        assert_eq!(report.shuttles, result.stats.shuttles, "{name}");
        assert!(
            report.program_fidelity >= 0.0 && report.program_fidelity <= 1.0,
            "{name}"
        );
        assert!(report.makespan_us > 0.0, "{name}");
    }
}

#[test]
fn fewer_shuttles_gives_higher_fidelity_on_same_circuit() {
    // The Fig. 8 mechanism end-to-end: the compiler with fewer shuttles
    // must produce at least as good a program fidelity.
    let spec = MachineSpec::linear(4, 8, 2).unwrap();
    let params = SimParams::default();
    let circuit = random_circuit(24, 400, 77);
    let base = compile(&circuit, &spec, &CompilerConfig::baseline()).unwrap();
    let opt = compile(&circuit, &spec, &CompilerConfig::optimized()).unwrap();
    assert!(opt.stats.shuttles < base.stats.shuttles);
    let base_rep = simulate(&base.schedule, &circuit, &spec, &params).unwrap();
    let opt_rep = simulate(&opt.schedule, &circuit, &spec, &params).unwrap();
    assert!(
        opt_rep.program_fidelity > base_rep.program_fidelity,
        "optimized {} vs baseline {}",
        opt_rep.program_fidelity,
        base_rep.program_fidelity
    );
    assert!(opt_rep.fidelity_improvement_over(&base_rep) > 1.0);
}

#[test]
fn paper_machine_hosts_all_paper_benchmarks() {
    let spec = MachineSpec::paper_l6();
    // 78-qubit SquareRoot is the largest circuit; 6 × 15 = 90 slots.
    assert!(spec.initial_capacity() >= 78);
    let circuit = square_root(78, 2); // shortened for test speed
    for config in [CompilerConfig::baseline(), CompilerConfig::optimized()] {
        compile(&circuit, &spec, &config).unwrap();
    }
}

#[test]
fn oversubscribed_machine_is_rejected_cleanly() {
    let spec = MachineSpec::linear(2, 4, 1).unwrap();
    let circuit = random_circuit(10, 20, 1);
    let err = compile(&circuit, &spec, &CompilerConfig::optimized()).unwrap_err();
    assert!(matches!(err, CompileError::CircuitTooLarge { .. }));
}

#[test]
fn single_trap_machine_needs_no_shuttles() {
    let spec = MachineSpec::linear(1, 20, 2).unwrap();
    let circuit = random_circuit(16, 300, 5);
    for config in [CompilerConfig::baseline(), CompilerConfig::optimized()] {
        let r = compile(&circuit, &spec, &config).unwrap();
        assert_eq!(r.stats.shuttles, 0);
    }
}

#[test]
fn deterministic_compilation() {
    let spec = MachineSpec::linear(3, 8, 2).unwrap();
    let circuit = random_circuit(18, 250, 13);
    let a = compile(&circuit, &spec, &CompilerConfig::optimized()).unwrap();
    let b = compile(&circuit, &spec, &CompilerConfig::optimized()).unwrap();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn ring_and_grid_topologies_compile() {
    use muzzle_shuttle::machine::TrapTopology;
    let circuit = random_circuit(18, 200, 21);
    for topology in [TrapTopology::ring(4), TrapTopology::grid(2, 2)] {
        let spec = MachineSpec::new(topology, 8, 2).unwrap();
        for config in [CompilerConfig::baseline(), CompilerConfig::optimized()] {
            let r = compile(&circuit, &spec, &config).unwrap();
            r.schedule.validate(&circuit, &spec).unwrap();
        }
    }
}
