//! Regression pins for the delta scorer: the clock-objective pipeline
//! under the default `--score-mode delta` must reproduce the
//! `BENCH_pr5.json` clock rows *exactly* — timed makespans, ties broken,
//! batched layers/hops and the strict-win flags were all produced by the
//! O(suffix) clone-and-re-lower scorer, so matching them bit-for-bit
//! proves the O(delta) rewrite changed the cost of scoring and nothing
//! else. The same pipeline under `--score-mode full` must match too (the
//! oracle path survives the refactor unchanged).

use muzzle_shuttle::compiler::{CompilerConfig, ScoreMode};
use muzzle_shuttle::machine::MachineSpec;
use muzzle_shuttle::obs;
use muzzle_shuttle::pack::compile_clock;
use muzzle_shuttle::timing::TimingModel;
use qccd_circuit::generators::paper_suite;
use std::sync::Mutex;

/// The `qccd-obs` recorder and counters are process-global; tests in this
/// binary run on parallel threads, so every test that compiles (and would
/// bump the counters the instrumented test measures) serializes here.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// One benchmark's pinned `BENCH_pr5.json` clock row (realistic timing).
struct Pin {
    name: &'static str,
    clock_timed_makespan_us: f64,
    clock_ties: usize,
    batched_layers: usize,
    batched_hops: usize,
}

/// The `BENCH_pr5.json` clock rows, verbatim (every benchmark improved,
/// so `candidate == chosen` makespan throughout).
const PINS: [Pin; 5] = [
    Pin {
        name: "Supremacy",
        clock_timed_makespan_us: 73620.0,
        clock_ties: 0,
        batched_layers: 26,
        batched_hops: 361,
    },
    Pin {
        name: "QAOA",
        clock_timed_makespan_us: 220800.0,
        clock_ties: 11,
        batched_layers: 74,
        batched_hops: 1432,
    },
    Pin {
        name: "SquareRoot",
        clock_timed_makespan_us: 185810.0,
        clock_ties: 7,
        batched_layers: 24,
        batched_hops: 271,
    },
    Pin {
        name: "QFT",
        clock_timed_makespan_us: 426835.0,
        clock_ties: 9,
        batched_layers: 42,
        batched_hops: 94,
    },
    Pin {
        name: "QuadraticForm",
        clock_timed_makespan_us: 511550.0,
        clock_ties: 1,
        batched_layers: 63,
        batched_hops: 194,
    },
];

/// Runs the clock pipeline (the same `compile_clock` path `muzzle eval`
/// uses) under `mode` and pins every row against `BENCH_pr5.json`.
fn assert_pr5_clock_rows(mode: ScoreMode) {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = MachineSpec::paper_l6();
    let config = CompilerConfig::optimized()
        .with_timing(TimingModel::realistic())
        .with_score_mode(mode);
    for (bench, pin) in paper_suite().iter().zip(&PINS) {
        assert_eq!(bench.name, pin.name, "suite order changed");
        let (chosen, stats) = compile_clock(&bench.circuit, &spec, &config)
            .expect("paper benchmarks compile under the clock objective");
        assert_eq!(
            chosen.timeline.makespan_us, pin.clock_timed_makespan_us,
            "{} ({mode:?}): clock timed makespan drifted",
            pin.name
        );
        assert_eq!(
            stats.clock_makespan_us, pin.clock_timed_makespan_us,
            "{} ({mode:?}): candidate makespan drifted",
            pin.name
        );
        assert_eq!(
            stats.clock_ties, pin.clock_ties,
            "{} ({mode:?}): tie decisions drifted",
            pin.name
        );
        assert_eq!(
            stats.batched_layers, pin.batched_layers,
            "{} ({mode:?}): batched layer count drifted",
            pin.name
        );
        assert_eq!(
            stats.batched_hops, pin.batched_hops,
            "{} ({mode:?}): batched hop count drifted",
            pin.name
        );
        assert!(
            stats.improved,
            "{} ({mode:?}): the clock candidate stopped beating the packed stack",
            pin.name
        );
    }
}

#[test]
fn delta_scoring_reproduces_bench_pr5_clock_rows_exactly() {
    assert_pr5_clock_rows(ScoreMode::Delta);
}

#[test]
fn full_scoring_reproduces_bench_pr5_clock_rows_exactly() {
    assert_pr5_clock_rows(ScoreMode::Full);
}

/// Candidate walks are shuttle-only, so under the default delta mode every
/// speculative candidate must be priced by the O(delta) path — zero clone
/// -oracle fallbacks, a 100% delta-hit rate on every paper benchmark —
/// proved by the `qccd-obs` hot-path counters rather than inferred from
/// timing.
#[test]
fn delta_scorer_serves_every_candidate_without_clone_fallbacks() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = MachineSpec::paper_l6();
    let config = CompilerConfig::optimized()
        .with_timing(TimingModel::realistic())
        .with_score_mode(ScoreMode::Delta);
    for bench in &paper_suite() {
        obs::reset();
        obs::enable();
        compile_clock(&bench.circuit, &spec, &config)
            .expect("paper benchmarks compile under the clock objective");
        obs::disable();
        let scored = obs::counter_value("core.candidates_scored");
        let hits = obs::counter_value("timing.delta_hits");
        let fallbacks = obs::counter_value("timing.clone_fallbacks");
        assert!(scored > 0, "{}: no candidates were scored", bench.name);
        assert_eq!(
            fallbacks, 0,
            "{}: shuttle-only candidates must never hit the clone oracle",
            bench.name
        );
        assert_eq!(
            hits, scored,
            "{}: every scored candidate must be priced by the delta path",
            bench.name
        );
        let rate = hits as f64 / (hits + fallbacks) as f64;
        eprintln!(
            "{}: delta-hit rate {hits}/{} = {:.1}%",
            bench.name,
            hits + fallbacks,
            100.0 * rate
        );
    }
}
