//! Property tests for the fidelity-attribution layer: the heat-provenance
//! ledger and per-gate loss decomposition over compiled schedules on
//! {linear, ring, grid} topologies under both routers and both timing
//! models.
//!
//! Invariants checked on every sampled instance:
//!
//! 1. **Log identity** — folding the event-ordered loss terms (gate
//!    `ln F` summands, negated shuttle-pulse losses) reproduces the
//!    replay's `log_program_fidelity` *bit-for-bit*, not approximately.
//! 2. **Ledger identity** — folding each chain's tagged heat deposits
//!    reproduces the simulator's `n̄` at every gate sample point and at
//!    program end, bit for bit.
//! 3. **Observes, never decides** — the attribution's embedded report is
//!    bit-for-bit the plain (uninstrumented) simulator's report, and the
//!    traced replay agrees with the untraced one the same way.
//! 4. **Decomposition consistency** — each unsaturated gate's duration
//!    and motional terms recombine into its log loss, and the motional
//!    term splits into zero-point plus heat, to floating-point rounding.

use muzzle_shuttle::circuit::generators::random_circuit;
use muzzle_shuttle::compiler::{compile, CompilerConfig, RouterPolicy};
use muzzle_shuttle::machine::{MachineSpec, TrapTopology};
use muzzle_shuttle::sim::{
    attribute_fidelity, attribute_fidelity_timed, simulate, simulate_timed, simulate_traced,
    FidelityAttribution, LossTerm, SimParams, SimReport,
};
use muzzle_shuttle::timing::TimingModel;
use proptest::prelude::*;

fn topology_strategy() -> impl Strategy<Value = TrapTopology> {
    prop_oneof![
        (2u32..=6).prop_map(TrapTopology::linear),
        (3u32..=8).prop_map(TrapTopology::ring),
        prop_oneof![
            Just(TrapTopology::grid(2, 2)),
            Just(TrapTopology::grid(2, 3)),
            Just(TrapTopology::grid(3, 3)),
        ],
    ]
}

/// Bit-for-bit equality over every report field — the
/// observes-never-decides contract; returns an error string so the
/// proptest and the deterministic test can share it.
fn check_reports_bit_equal(a: &SimReport, b: &SimReport) -> Result<(), String> {
    let floats = [
        ("program_fidelity", a.program_fidelity, b.program_fidelity),
        (
            "log_program_fidelity",
            a.log_program_fidelity,
            b.log_program_fidelity,
        ),
        ("makespan_us", a.makespan_us, b.makespan_us),
        (
            "timed_makespan_us",
            a.timed_makespan_us,
            b.timed_makespan_us,
        ),
        (
            "final_mean_motional_mode",
            a.final_mean_motional_mode,
            b.final_mean_motional_mode,
        ),
        (
            "final_mean_motional_mode_occupied",
            a.final_mean_motional_mode_occupied,
            b.final_mean_motional_mode_occupied,
        ),
        (
            "min_gate_fidelity",
            a.min_gate_fidelity,
            b.min_gate_fidelity,
        ),
    ];
    for (name, x, y) in floats {
        if x.to_bits() != y.to_bits() {
            return Err(format!("{name} diverged: {x} vs {y}"));
        }
    }
    let counts = [
        ("shuttles", a.shuttles, b.shuttles),
        ("shuttle_depth", a.shuttle_depth, b.shuttle_depth),
        ("gates", a.gates, b.gates),
        ("zone_moves", a.zone_moves, b.zone_moves),
        (
            "junction_crossings",
            a.junction_crossings,
            b.junction_crossings,
        ),
    ];
    for (name, x, y) in counts {
        if x != y {
            return Err(format!("{name} diverged: {x} vs {y}"));
        }
    }
    Ok(())
}

/// The shared invariant bundle: both identities, an *independent* re-fold
/// of the log identity from the raw terms, and per-gate decomposition
/// consistency.
fn check_attribution(attr: &FidelityAttribution) -> Result<(), String> {
    if !attr.log_identity_holds() {
        return Err(format!(
            "log identity violated: terms do not reproduce {}",
            attr.report.log_program_fidelity
        ));
    }
    if !attr.ledger_identity_holds() {
        return Err("ledger identity violated: deposits do not reproduce n_bar".to_owned());
    }

    // Re-fold the terms here rather than trusting `total_log`, so the
    // test states the identity independently of the implementation.
    let mut sum = 0.0f64;
    let mut zero_fidelity = false;
    for term in &attr.terms {
        match *term {
            LossTerm::Gate { fidelity, .. } => {
                if fidelity <= 0.0 {
                    zero_fidelity = true;
                } else {
                    sum += fidelity.ln();
                }
            }
            LossTerm::Shuttle { log_loss, .. } => sum += -log_loss,
        }
    }
    let refolded = if zero_fidelity {
        f64::NEG_INFINITY
    } else {
        sum
    };
    if refolded.to_bits() != attr.report.log_program_fidelity.to_bits() {
        return Err(format!(
            "independent re-fold diverged: {refolded} vs {}",
            attr.report.log_program_fidelity
        ));
    }

    for term in &attr.terms {
        if let LossTerm::Gate {
            gate,
            trap,
            n_bar,
            ledger_cursor,
            log_loss,
            duration_loss,
            motional_loss,
            zero_point_loss,
            heat_loss,
            saturated,
            ..
        } = *term
        {
            let folded = attr.ledger.n_bar_at(trap.index(), ledger_cursor);
            if folded.to_bits() != n_bar.to_bits() {
                return Err(format!(
                    "gate {gate}: ledger fold {folded} diverged from sampled n_bar {n_bar}"
                ));
            }
            if saturated {
                continue;
            }
            let recombined = duration_loss + motional_loss;
            let tol = 1e-9 * log_loss.abs().max(1e-300);
            if (recombined - log_loss).abs() > tol {
                return Err(format!(
                    "gate {gate}: duration + motional = {recombined} != log loss {log_loss}"
                ));
            }
            let split = zero_point_loss + heat_loss;
            let tol = 1e-9 * motional_loss.abs().max(1e-300);
            if (split - motional_loss).abs() > tol {
                return Err(format!(
                    "gate {gate}: zero-point + heat = {split} != motional loss {motional_loss}"
                ));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn attribution_identities_hold_on_all_topologies(
        topology in topology_strategy(),
        qubits in 4u32..=12,
        gates in 1usize..=60,
        seed in any::<u64>(),
        congestion in any::<bool>(),
        realistic in any::<bool>(),
    ) {
        let traps = topology.num_traps();
        let comm = 2u32;
        let per_trap = qubits.div_ceil(traps) + 1;
        let spec = MachineSpec::new(topology, per_trap + comm, comm)
            .expect("constructed spec is valid");
        let circuit = random_circuit(qubits, gates, seed);
        let router = if congestion {
            RouterPolicy::congestion()
        } else {
            RouterPolicy::Serial
        };
        let model = if realistic {
            TimingModel::realistic()
        } else {
            TimingModel::ideal()
        };
        let params = SimParams::default();
        let config = CompilerConfig::optimized().with_router(router);
        let result = compile(&circuit, &spec, &config).expect("benchmark fits machine");

        // Untimed replay: identities plus bit-for-bit report parity with
        // the plain simulator and with the traced replay.
        let attr = attribute_fidelity(&result.schedule, &circuit, &spec, &params)
            .expect("compiled schedules replay");
        if let Err(msg) = check_attribution(&attr) {
            prop_assert!(false, "untimed: {}", msg);
        }
        let plain = simulate(&result.schedule, &circuit, &spec, &params)
            .expect("compiled schedules replay");
        if let Err(msg) = check_reports_bit_equal(&attr.report, &plain) {
            prop_assert!(false, "untimed attribution vs plain: {}", msg);
        }
        let traced = simulate_traced(&result.schedule, &circuit, &spec, &params)
            .expect("compiled schedules replay");
        if let Err(msg) = check_reports_bit_equal(&traced.report, &plain) {
            prop_assert!(false, "traced vs untraced: {}", msg);
        }

        // Timed replay against the transport schedule and timing model.
        let attr = attribute_fidelity_timed(
            &result.schedule,
            &result.transport,
            &circuit,
            &spec,
            &params,
            &model,
        )
        .expect("compiled schedules replay timed");
        if let Err(msg) = check_attribution(&attr) {
            prop_assert!(false, "timed: {}", msg);
        }
        let plain = simulate_timed(
            &result.schedule,
            &result.transport,
            &circuit,
            &spec,
            &params,
            &model,
        )
        .expect("compiled schedules replay timed");
        if let Err(msg) = check_reports_bit_equal(&attr.report, &plain) {
            prop_assert!(false, "timed attribution vs plain: {}", msg);
        }
    }
}

/// The paper's own machine shape: a 16-qubit QFT on the six-trap L6 spec
/// must shuttle, so the attribution must blame real heat — deposits with
/// provenance, a non-trivial heat loss, and a blame pass whose per-deposit
/// `blamed_log_loss` re-aggregates to the gates' total heat loss.
#[test]
fn qft_on_paper_machine_blames_real_heat() {
    let circuit = muzzle_shuttle::circuit::generators::qft(16);
    let spec = MachineSpec::paper_l6();
    let params = SimParams::default();
    let model = TimingModel::realistic();
    let config = CompilerConfig::optimized().with_router(RouterPolicy::congestion());
    let result = compile(&circuit, &spec, &config).expect("QFT compiles on the paper machine");
    let attr = attribute_fidelity_timed(
        &result.schedule,
        &result.transport,
        &circuit,
        &spec,
        &params,
        &model,
    )
    .expect("QFT replays on the paper machine");
    check_attribution(&attr).expect("attribution identities hold");
    assert!(attr.identity_holds());

    assert!(
        attr.gate_heat_loss > 0.0,
        "a shuttling QFT must lose fidelity to deposited heat"
    );
    assert!(
        attr.shuttle_pulse_loss > 0.0,
        "a 16-qubit QFT cannot be local on 17-ion traps"
    );

    // The blame pass conserves heat loss: summing every deposit's
    // blamed share re-aggregates the gates' total heat loss.
    let blamed: f64 = attr
        .ledger
        .deposits
        .iter()
        .flatten()
        .map(|d| d.blamed_log_loss)
        .sum();
    let tol = 1e-9 * attr.gate_heat_loss.abs();
    assert!(
        (blamed - attr.gate_heat_loss).abs() <= tol,
        "blame must conserve heat loss: {blamed} vs {}",
        attr.gate_heat_loss
    );

    let worst = attr.worst_gates(5);
    assert!(!worst.is_empty());
    for pair in worst.windows(2) {
        assert!(
            pair[0].log_loss() >= pair[1].log_loss(),
            "worst gates must be sorted by descending log loss"
        );
    }
    let hottest = attr.hottest_traps(3);
    assert!(!hottest.is_empty());
    assert!(
        hottest.iter().any(|&(_, blamed, _)| blamed > 0.0),
        "some trap must carry blamed heat loss"
    );
    assert!(
        !attr.costliest_shuttles(3).is_empty(),
        "a shuttling program must have shuttle blame rows"
    );
}
