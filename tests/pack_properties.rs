//! Property tests for the `qccd-pack` transport optimizer: random circuits
//! × {linear, ring, grid} topologies × all routers.
//!
//! Invariants checked on every sampled instance:
//!
//! 1. **Replay equivalence** — the packed schedule runs the same gates in
//!    the same traps, passes the strict schedule validator, and replays to
//!    the *identical final ion mapping* as the compiled schedule
//!    ([`validate_equivalent`]).
//! 2. **Transport validity** — the packed rounds strict-validate against
//!    the packed flat schedule, and the packed timeline has no trap or
//!    segment resource overlaps.
//! 3. **Never regress** — the packed timed makespan is ≤ the input's under
//!    the scoring model, and the packed shuttle count never grows.
//! 4. **Incremental re-lowering** — splitting a schedule at any gate/run
//!    boundary and advancing a checkpointed [`LowerState`] through the two
//!    chunks produces a timeline *bit-for-bit equal* to one whole-schedule
//!    `lower` call, including after the suffix's transport is perturbed
//!    (repacked serially) — the foundation the packer's O(suffix) candidate
//!    scoring rests on.

use muzzle_shuttle::circuit::generators::random_circuit;
use muzzle_shuttle::compiler::{compile, CompilerConfig, RouterPolicy};
use muzzle_shuttle::machine::{MachineSpec, Operation, TrapTopology};
use muzzle_shuttle::pack::{pack, validate_equivalent, PackConfig};
use muzzle_shuttle::route::TransportSchedule;
use muzzle_shuttle::timing::{lower, LowerState, TimingModel};
use proptest::prelude::*;

fn topology_strategy() -> impl Strategy<Value = TrapTopology> {
    prop_oneof![
        (2u32..=6).prop_map(TrapTopology::linear),
        (3u32..=8).prop_map(TrapTopology::ring),
        prop_oneof![
            Just(TrapTopology::grid(2, 2)),
            Just(TrapTopology::grid(2, 3)),
            Just(TrapTopology::grid(3, 3)),
        ],
    ]
}

/// The three router stacks: serial, congestion, congestion + lookahead.
fn router_stack(selector: usize) -> (RouterPolicy, bool) {
    match selector % 3 {
        0 => (RouterPolicy::Serial, false),
        1 => (RouterPolicy::congestion(), false),
        _ => (RouterPolicy::congestion(), true),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packed_schedules_replay_to_identical_final_mappings(
        topology in topology_strategy(),
        qubits in 4u32..=12,
        gates in 1usize..=60,
        seed in any::<u64>(),
        router_sel in 0usize..3,
        realistic in any::<bool>(),
    ) {
        let (router, lookahead) = router_stack(router_sel);
        let traps = topology.num_traps();
        let comm = 2u32;
        let per_trap = qubits.div_ceil(traps) + 1;
        let spec = MachineSpec::new(topology, per_trap + comm, comm)
            .expect("constructed spec is valid");
        let circuit = random_circuit(qubits, gates, seed);
        let config = CompilerConfig::optimized()
            .with_router(router)
            .with_lookahead(lookahead);
        let result = compile(&circuit, &spec, &config).expect("benchmark fits machine");
        let model = if realistic {
            TimingModel::realistic()
        } else {
            TimingModel::ideal()
        };
        let packed = pack(&result, &circuit, &spec, &PackConfig::for_model(model))
            .expect("packing validates on compiled schedules");

        // (1) replay equivalence: same gates, same traps, same final mapping.
        validate_equivalent(&result.schedule, &packed.schedule, &circuit, &spec)
            .expect("packed schedule must be replay-equivalent");
        // (2) transport + timeline validity.
        packed
            .transport
            .validate(&packed.schedule, &spec)
            .expect("packed rounds must strict-validate");
        packed.timeline.validate().expect("packed timeline must validate");
        // (3) never regress: clock and shuttle count.
        prop_assert!(packed.stats.packed_makespan_us <= packed.stats.input_makespan_us);
        prop_assert!(
            packed.schedule.stats().shuttles <= result.schedule.stats().shuttles
        );
        prop_assert_eq!(packed.timeline.makespan_us, packed.stats.packed_makespan_us);
    }

    #[test]
    fn incremental_relowering_equals_full_lower_bit_for_bit(
        topology in topology_strategy(),
        qubits in 4u32..=10,
        gates in 1usize..=50,
        seed in any::<u64>(),
        split_sel in any::<u64>(),
        realistic in any::<bool>(),
    ) {
        let traps = topology.num_traps();
        let comm = 2u32;
        let per_trap = qubits.div_ceil(traps) + 1;
        let spec = MachineSpec::new(topology, per_trap + comm, comm)
            .expect("constructed spec is valid");
        let circuit = random_circuit(qubits, gates, seed);
        let config = CompilerConfig::optimized().with_router(RouterPolicy::congestion());
        let result = compile(&circuit, &spec, &config).expect("benchmark fits machine");
        let schedule = &result.schedule;
        let model = if realistic {
            TimingModel::realistic()
        } else {
            TimingModel::ideal()
        };

        // Candidate split points: positions where neither a transport
        // round nor a gate-free run is cut (gate boundaries and run
        // starts). Index 0 and len are always legal.
        let ops = &schedule.operations;
        let mut boundaries: Vec<usize> = vec![0, ops.len()];
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, Operation::Gate { .. }) {
                boundaries.push(i);
                boundaries.push(i + 1);
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        let split = boundaries[(split_sel as usize) % boundaries.len()];

        // The perturbation: the suffix's transport is *repacked* serially
        // (one hop per round) — a different round structure over the same
        // hops, exactly the kind of candidate the packer scores.
        let prefix_sched = muzzle_shuttle::machine::Schedule::new(
            schedule.initial_mapping.clone(),
            ops[..split].to_vec(),
        );
        let prefix_rounds = {
            // Consume the compiled rounds covering the prefix's shuttles.
            let prefix_shuttles = prefix_sched.stats().shuttles;
            let mut covered = 0usize;
            let mut k = 0usize;
            while covered < prefix_shuttles {
                covered += result.transport.rounds[k].moves.len();
                k += 1;
            }
            // A split at a gate boundary never cuts a round.
            prop_assert_eq!(covered, prefix_shuttles);
            &result.transport.rounds[..k]
        };
        let suffix_serial = TransportSchedule::pack_serial(
            &muzzle_shuttle::machine::Schedule::new(
                schedule.initial_mapping.clone(),
                ops[split..].to_vec(),
            ),
        );

        // Stitched full lowering: prefix rounds + serial suffix rounds.
        let mut stitched_rounds = prefix_rounds.to_vec();
        stitched_rounds.extend(suffix_serial.rounds.iter().cloned());
        let full = lower(
            schedule,
            Some(&TransportSchedule { rounds: stitched_rounds.clone() }),
            &circuit,
            &spec,
            &model,
        )
        .expect("stitched schedule lowers");

        // Incremental: advance to the split, checkpoint, advance the
        // perturbed suffix from the clone.
        let mut state = LowerState::new(&schedule.initial_mapping, &spec, &model)
            .expect("valid model");
        let mut events = Vec::new();
        state
            .advance(&ops[..split], Some(prefix_rounds), &circuit, &spec, &mut events)
            .expect("prefix advances");
        let checkpoint = state.clone();
        let mut resumed = checkpoint.clone();
        resumed
            .advance(
                &ops[split..],
                Some(&suffix_serial.rounds),
                &circuit,
                &spec,
                &mut events,
            )
            .expect("suffix advances");
        let incremental = resumed.finish(events);

        prop_assert_eq!(incremental, full, "incremental must equal full lower bit-for-bit");
    }
}
