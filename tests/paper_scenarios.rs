//! The paper's worked examples as executable regression tests.

use muzzle_shuttle::circuit::parser::parse_program;
use muzzle_shuttle::compiler::{compile_with_mapping, CompilerConfig};
use muzzle_shuttle::machine::{InitialMapping, MachineSpec, TrapId};

/// Fig. 4: the excess-capacity policy ping-pongs ion 2 (4 shuttles); the
/// future-ops policy moves ion 1 once.
#[test]
fn fig4_ping_pong_vs_future_ops() {
    let circuit = parse_program(
        "MS q[1], q[2];\nMS q[2], q[3];\nMS q[1], q[2];\nMS q[2], q[4];",
        5,
    )
    .unwrap();
    let spec = MachineSpec::linear(2, 4, 1).unwrap();
    let mapping = InitialMapping::from_traps(
        &spec,
        vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1), TrapId(1)],
    )
    .unwrap();

    let baseline = compile_with_mapping(
        &circuit,
        &spec,
        &CompilerConfig::baseline(),
        mapping.clone(),
    )
    .unwrap();
    assert_eq!(baseline.stats.shuttles, 4, "paper: 4 shuttles");

    let optimized =
        compile_with_mapping(&circuit, &spec, &CompilerConfig::optimized(), mapping).unwrap();
    assert_eq!(optimized.stats.shuttles, 1, "paper: only 1 shuttle");
}

/// Fig. 7: T4 full, ECs 2,1,4,2,0,4. The baseline eviction travels to T0
/// (4 hops); nearest-neighbour-first uses an adjacent trap (1 hop).
#[test]
fn fig7_eviction_distances() {
    let spec = MachineSpec::linear(6, 6, 0).unwrap();
    let mut traps = Vec::new();
    for (t, occ) in [4u32, 5, 2, 4, 6, 2].into_iter().enumerate() {
        for _ in 0..occ {
            traps.push(TrapId(t as u32));
        }
    }
    let mapping = InitialMapping::from_traps(&spec, traps).unwrap();
    // Qubit 14 lives in T3, qubit 21 in T5; the route crosses full T4.
    let circuit = parse_program("MS q[14], q[21];", 23).unwrap();

    let baseline = compile_with_mapping(
        &circuit,
        &spec,
        &CompilerConfig::baseline(),
        mapping.clone(),
    )
    .unwrap();
    assert_eq!(
        baseline.stats.rebalance_shuttles, 4,
        "baseline evicts all the way to T0"
    );
    assert_eq!(baseline.stats.rebalances, 1);

    let optimized =
        compile_with_mapping(&circuit, &spec, &CompilerConfig::optimized(), mapping).unwrap();
    assert_eq!(
        optimized.stats.rebalance_shuttles, 1,
        "nearest-neighbour eviction needs a single hop"
    );
    assert!(optimized.stats.shuttles < baseline.stats.shuttles);
}

/// §III-A3: the paper's default proximity of 6 must be wired into the
/// optimized preset, and the sweep end-points must bracket it sanely.
#[test]
fn proximity_default_is_six_and_sweep_is_stable() {
    use muzzle_shuttle::circuit::generators::random_circuit;
    use muzzle_shuttle::compiler::{compile, DirectionPolicy};

    assert_eq!(CompilerConfig::DEFAULT_PROXIMITY, 6);
    assert_eq!(
        CompilerConfig::optimized().direction,
        DirectionPolicy::FutureOps { proximity: 6 }
    );

    let spec = MachineSpec::linear(3, 8, 2).unwrap();
    let circuit = random_circuit(18, 300, 3);
    let mut last = None;
    for p in [0u32, 1, 6, 50] {
        let cfg = CompilerConfig::optimized_with_proximity(p);
        let r = compile(&circuit, &spec, &cfg).unwrap();
        // All proximities must produce valid, complete schedules.
        assert_eq!(r.stats.gate_ops, 300);
        last = Some(r.stats.shuttles);
    }
    assert!(last.unwrap() > 0);
}

/// Table II's headline property at paper scale: on the L6 platform the
/// optimized compiler needs no more shuttles than the baseline on any of
/// the five named NISQ benchmarks.
#[test]
fn optimized_dominates_baseline_on_paper_suite() {
    use muzzle_shuttle::circuit::generators::paper_suite;
    use muzzle_shuttle::compiler::compile;

    let spec = MachineSpec::paper_l6();
    for bench in paper_suite() {
        let base = compile(&bench.circuit, &spec, &CompilerConfig::baseline()).unwrap();
        let opt = compile(&bench.circuit, &spec, &CompilerConfig::optimized()).unwrap();
        assert!(
            opt.stats.shuttles <= base.stats.shuttles,
            "{}: optimized {} > baseline {}",
            bench.name,
            opt.stats.shuttles,
            base.stats.shuttles
        );
    }
}

/// The paper's L6 evaluation platform (§IV-A).
#[test]
fn paper_platform_shape() {
    let spec = MachineSpec::paper_l6();
    assert_eq!(spec.num_traps(), 6);
    assert_eq!(spec.total_capacity(), 17);
    assert_eq!(spec.comm_capacity(), 2);
    assert_eq!(spec.topology().to_string(), "L6");
    // Fig. 7's "T4 sending ion to T0 needing 4 shuttles".
    assert_eq!(spec.topology().distance(TrapId(4), TrapId(0)), Some(4));
}
