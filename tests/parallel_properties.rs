//! Determinism properties of the `--jobs N` worker pool: parallel
//! speculative scoring must be a pure wall-clock optimization.
//!
//! Invariants checked:
//!
//! 1. **Core compile parity** — `compile` under the clock objective
//!    (speculative candidate scoring through
//!    [`WorkerPool::map_indexed`]) produces bit-for-bit identical
//!    schedules, transport and stats at every pool width, on
//!    {linear, ring, grid} topologies under both timing models.
//! 2. **Full pipeline parity** — `compile_clock` (pooled candidate
//!    lowering in the packer, pooled run re-planning, and the two
//!    pipeline arms raced on scoped threads) is bit-for-bit identical
//!    at jobs ∈ {1, 2, 8}, including the chosen timeline's makespan
//!    bits.
//! 3. **Threaded fold parity** — `map_indexed` itself concatenates
//!    shard outputs in index order, bit-for-bit equal to the
//!    sequential fold, stressed with far more tasks than workers and
//!    with fewer tasks than workers (the `n < cutoff` sequential
//!    fallback).

use muzzle_shuttle::circuit::generators::random_circuit;
use muzzle_shuttle::compiler::{compile, CompilerConfig, Objective};
use muzzle_shuttle::machine::{MachineSpec, TrapTopology};
use muzzle_shuttle::pack::compile_clock;
use muzzle_shuttle::timing::{TimingModel, WorkerPool, SEQUENTIAL_CUTOFF};

/// The three paper topologies at a size where shuttling is forced.
fn specs() -> Vec<(&'static str, MachineSpec)> {
    vec![
        (
            "linear",
            MachineSpec::linear(3, 8, 2).expect("linear spec builds"),
        ),
        (
            "ring",
            MachineSpec::new(TrapTopology::ring(4), 8, 2).expect("ring spec builds"),
        ),
        (
            "grid",
            MachineSpec::new(TrapTopology::grid(2, 2), 8, 2).expect("grid spec builds"),
        ),
    ]
}

fn models() -> [(&'static str, TimingModel); 2] {
    [
        ("ideal", TimingModel::ideal()),
        ("realistic", TimingModel::realistic()),
    ]
}

#[test]
fn core_clock_compile_is_bit_identical_at_every_pool_width() {
    for (topo, spec) in specs() {
        let circuit = random_circuit(10, 50, 0x9e37);
        for (timing, model) in models() {
            let config = CompilerConfig::optimized()
                .with_timing(model)
                .with_objective(Objective::Clock);
            let base = compile(&circuit, &spec, &config)
                .unwrap_or_else(|e| panic!("{topo}/{timing}: sequential compile failed: {e}"));
            for jobs in [2usize, 8] {
                let wide = compile(&circuit, &spec, &config.with_jobs(jobs))
                    .unwrap_or_else(|e| panic!("{topo}/{timing}: jobs={jobs} compile failed: {e}"));
                assert_eq!(wide.stats, base.stats, "{topo}/{timing} jobs={jobs}");
                assert_eq!(wide.schedule, base.schedule, "{topo}/{timing} jobs={jobs}");
                assert_eq!(
                    wide.transport, base.transport,
                    "{topo}/{timing} jobs={jobs}"
                );
            }
        }
    }
}

#[test]
fn clock_pipeline_is_bit_identical_at_every_pool_width() {
    for (topo, spec) in specs() {
        let circuit = random_circuit(10, 40, 0x51f1);
        for (timing, model) in models() {
            let config = CompilerConfig::optimized().with_timing(model);
            let (base, base_stats) = compile_clock(&circuit, &spec, &config)
                .unwrap_or_else(|e| panic!("{topo}/{timing}: sequential pipeline failed: {e}"));
            for jobs in [2usize, 8] {
                let (wide, wide_stats) = compile_clock(&circuit, &spec, &config.with_jobs(jobs))
                    .unwrap_or_else(|e| {
                        panic!("{topo}/{timing}: jobs={jobs} pipeline failed: {e}")
                    });
                assert_eq!(wide_stats, base_stats, "{topo}/{timing} jobs={jobs}");
                assert_eq!(wide.schedule, base.schedule, "{topo}/{timing} jobs={jobs}");
                assert_eq!(
                    wide.transport, base.transport,
                    "{topo}/{timing} jobs={jobs}"
                );
                assert_eq!(
                    wide.timeline.makespan_us.to_bits(),
                    base.timeline.makespan_us.to_bits(),
                    "{topo}/{timing} jobs={jobs}"
                );
            }
        }
    }
}

/// A float chain whose result depends on evaluation order: summing a
/// shard in any other order (or folding shards in completion order)
/// changes the rounding, so bitwise equality certifies index order.
fn order_sensitive(i: usize) -> f64 {
    let x = (i as f64).mul_add(0.1, 1.0);
    (x.sin() + 1.0) / (x.sqrt() + 0.3)
}

#[test]
fn threaded_fold_matches_sequential_with_more_tasks_than_workers() {
    let n = 1000;
    let sequential: Vec<f64> = (0..n).map(order_sensitive).collect();
    for jobs in [2usize, 3, 8, 64] {
        let pool = WorkerPool::new(jobs);
        let parallel = pool.map_indexed(n, SEQUENTIAL_CUTOFF, order_sensitive);
        assert_eq!(parallel.len(), sequential.len(), "jobs={jobs}");
        for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
            assert_eq!(p.to_bits(), s.to_bits(), "jobs={jobs} index {i}");
        }
        // Folding left-to-right over the concatenated shards must equal
        // the sequential left-to-right fold, bit for bit.
        let fold = |v: &[f64]| v.iter().fold(0.0f64, |acc, x| acc + x);
        assert_eq!(
            fold(&parallel).to_bits(),
            fold(&sequential).to_bits(),
            "jobs={jobs}"
        );
    }
}

#[test]
fn threaded_fold_matches_sequential_with_fewer_tasks_than_workers() {
    // Below the cutoff the pool must fall back to the calling thread and
    // still return index order; above it, workers outnumber tasks and
    // every shard is a single index.
    for n in [0usize, 1, SEQUENTIAL_CUTOFF - 1, SEQUENTIAL_CUTOFF, 7] {
        let sequential: Vec<f64> = (0..n).map(order_sensitive).collect();
        let pool = WorkerPool::new(16);
        let parallel = pool.map_indexed(n, SEQUENTIAL_CUTOFF, order_sensitive);
        assert_eq!(parallel.len(), n);
        for (i, (p, s)) in parallel.iter().zip(&sequential).enumerate() {
            assert_eq!(p.to_bits(), s.to_bits(), "n={n} index {i}");
        }
    }
}
