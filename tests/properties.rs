//! Property-based tests over the compiler pipeline and its substrates.

use muzzle_shuttle::circuit::generators::random_circuit;
use muzzle_shuttle::circuit::parser::parse_program;
use muzzle_shuttle::circuit::{Circuit, Opcode, Qubit};
use muzzle_shuttle::compiler::ScheduleAnalysis;
use muzzle_shuttle::compiler::{
    compile, CompilerConfig, DirectionPolicy, IonSelection, MappingPolicy, RebalancePolicy,
    RouterPolicy,
};
use muzzle_shuttle::machine::{InitialMapping, IonId, MachineSpec, MachineState, TrapId};
use muzzle_shuttle::sim::{simulate, simulate_traced, SimParams};
use proptest::prelude::*;

/// An arbitrary small machine spec that can host `min_ions`.
fn machine_strategy(min_ions: u32) -> impl Strategy<Value = MachineSpec> {
    (2u32..=5, 1u32..=3).prop_map(move |(traps, comm)| {
        // Capacity chosen so traps × (total − comm) ≥ min_ions with slack.
        let per_trap = min_ions.div_ceil(traps) + comm + 1;
        MachineSpec::linear(traps, per_trap + comm, comm).expect("validated by construction")
    })
}

fn config_strategy() -> impl Strategy<Value = CompilerConfig> {
    (
        prop_oneof![
            Just(DirectionPolicy::ExcessCapacity),
            (1u32..=12).prop_map(|p| DirectionPolicy::FutureOps { proximity: p }),
            (1u32..=12).prop_map(|p| DirectionPolicy::FutureOpsGateDistance { proximity: p }),
        ],
        any::<bool>(),
        prop_oneof![
            Just(RebalancePolicy::FromTrapZero),
            Just(RebalancePolicy::NearestNeighbor)
        ],
        prop_oneof![
            Just(IonSelection::ChainEnd),
            Just(IonSelection::MaxScore { wd: 0.5, ws: 0.5 })
        ],
        prop_oneof![
            Just(MappingPolicy::RoundRobin),
            Just(MappingPolicy::GreedyInteraction)
        ],
        prop_oneof![Just(RouterPolicy::Serial), Just(RouterPolicy::congestion())],
    )
        .prop_map(
            |(direction, reorder, rebalance, ion_selection, mapping, router)| CompilerConfig {
                direction,
                reorder,
                rebalance,
                ion_selection,
                mapping,
                router,
                ..CompilerConfig::baseline()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any (circuit, machine, config) triple yields a schedule that passes
    /// full replay validation: every gate once, dependencies respected,
    /// operands co-located, shuttles legal. This subsumes ion conservation
    /// and capacity invariants (the validator replays them).
    #[test]
    fn compiled_schedules_always_validate(
        qubits in 4u32..=16,
        gates in 1usize..=120,
        seed in any::<u64>(),
        config in config_strategy(),
        spec in machine_strategy(16),
    ) {
        let circuit = random_circuit(qubits, gates, seed);
        let result = compile(&circuit, &spec, &config).expect("compile succeeds");
        prop_assert!(result.schedule.validate(&circuit, &spec).is_ok());
        prop_assert_eq!(result.stats.gate_ops, gates);
        prop_assert_eq!(result.schedule.stats().shuttles, result.stats.shuttles);
    }

    /// Simulation of any valid schedule produces bounded outputs.
    #[test]
    fn simulation_outputs_are_bounded(
        qubits in 4u32..=12,
        gates in 1usize..=80,
        seed in any::<u64>(),
        spec in machine_strategy(12),
    ) {
        let circuit = random_circuit(qubits, gates, seed);
        let result = compile(&circuit, &spec, &CompilerConfig::optimized()).expect("compiles");
        let report = simulate(&result.schedule, &circuit, &spec, &SimParams::default())
            .expect("valid schedule simulates");
        prop_assert!(report.program_fidelity >= 0.0 && report.program_fidelity <= 1.0);
        prop_assert!(report.min_gate_fidelity >= 0.0 && report.min_gate_fidelity <= 1.0);
        prop_assert!(report.makespan_us >= 0.0);
        prop_assert!(report.final_mean_motional_mode >= 0.0);
        prop_assert_eq!(report.gates, gates);
    }

    /// The DAG layer structure is a correct topological stratification for
    /// arbitrary circuits.
    #[test]
    fn dag_layers_stratify(
        qubits in 2u32..=10,
        gates in 0usize..=60,
        seed in any::<u64>(),
    ) {
        let circuit = random_circuit(qubits, gates, seed);
        let dag = circuit.dependency_dag();
        for g in circuit.gates() {
            for p in dag.predecessors(g.id) {
                prop_assert!(dag.layer_of(*p) < dag.layer_of(g.id));
            }
        }
        let order = dag.topological_order();
        prop_assert!(dag.is_valid_execution_order(&order));
    }

    /// Traced simulation agrees with the plain simulation and its records
    /// are internally consistent.
    #[test]
    fn trace_is_consistent_with_report(
        qubits in 4u32..=10,
        gates in 1usize..=60,
        seed in any::<u64>(),
        spec in machine_strategy(10),
    ) {
        let circuit = random_circuit(qubits, gates, seed);
        let compiled = compile(&circuit, &spec, &CompilerConfig::optimized()).expect("compiles");
        let params = SimParams::default();
        let plain = simulate(&compiled.schedule, &circuit, &spec, &params).expect("simulates");
        let traced = simulate_traced(&compiled.schedule, &circuit, &spec, &params).expect("simulates");
        prop_assert_eq!(traced.report, plain);
        prop_assert_eq!(traced.records.len(), compiled.schedule.operations.len());
        // Every record fits inside the makespan and has non-negative span.
        for r in &traced.records {
            prop_assert!(r.start_us() <= r.end_us());
            prop_assert!(r.end_us() <= plain.makespan_us + 1e-9);
        }
        // Utilization tallies match the schedule stats.
        let total_gates: usize = traced.utilization.iter().map(|u| u.gates).sum();
        let arrivals: usize = traced.utilization.iter().map(|u| u.arrivals).sum();
        prop_assert_eq!(total_gates, gates);
        prop_assert_eq!(arrivals, compiled.stats.shuttles);
        prop_assert!((0.0..=1.0).contains(&traced.idle_fraction()));
    }

    /// Schedule analysis tallies are conserved.
    #[test]
    fn analysis_conservation(
        qubits in 4u32..=12,
        gates in 1usize..=80,
        seed in any::<u64>(),
        spec in machine_strategy(12),
    ) {
        let circuit = random_circuit(qubits, gates, seed);
        let compiled = compile(&circuit, &spec, &CompilerConfig::optimized()).expect("compiles");
        let a = ScheduleAnalysis::analyze(&compiled.schedule, spec.num_traps(), qubits);
        prop_assert_eq!(a.shuttles, compiled.stats.shuttles);
        prop_assert_eq!(a.gates, gates);
        // Ion travel sums to shuttle count; trap flow sums to shuttle count.
        prop_assert_eq!(a.ion_travel.iter().sum::<usize>(), a.shuttles);
        let flow_total: usize = a.trap_flow.iter().flatten().sum();
        prop_assert_eq!(flow_total, a.shuttles);
        prop_assert!((0.0..=1.0).contains(&a.stationary_ion_fraction()));
    }

    /// QASM export emits exactly one statement per gate plus the fixed
    /// 3-line header (and a creg when measures are present).
    #[test]
    fn qasm_export_statement_count(
        qubits in 2u32..=10,
        gates in 0usize..=50,
        seed in any::<u64>(),
    ) {
        use muzzle_shuttle::circuit::qasm::to_qasm;
        let circuit = random_circuit(qubits, gates, seed);
        let text = to_qasm(&circuit);
        let statements = text.lines().filter(|l| l.ends_with(';')).count();
        prop_assert_eq!(statements, 3 + gates);
        prop_assert!(text.starts_with("OPENQASM 2.0;"));
    }

    /// Text round-trip: rendering a circuit and parsing it back is the
    /// identity.
    #[test]
    fn program_text_round_trips(
        qubits in 2u32..=12,
        gates in 0usize..=50,
        seed in any::<u64>(),
    ) {
        let circuit = random_circuit(qubits, gates, seed);
        let text = circuit.to_program_text();
        let parsed = parse_program(&text, qubits).expect("rendered text parses");
        prop_assert_eq!(parsed, circuit);
    }

    /// Machine-state invariants hold under arbitrary legal shuttle
    /// sequences.
    #[test]
    fn machine_invariants_under_random_shuttles(
        hops in proptest::collection::vec((0u32..8, 0u32..4), 0..60),
    ) {
        let spec = MachineSpec::linear(4, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 8).unwrap();
        let mut state = MachineState::with_mapping(&spec, &mapping).unwrap();
        for (ion, trap) in hops {
            // Apply the hop only if legal; illegal hops must error without
            // corrupting state.
            let _ = state.shuttle(IonId(ion), TrapId(trap));
            prop_assert!(state.check_invariants());
        }
        // Ion conservation: all 8 ions still present exactly once.
        let total: u32 = (0..4).map(|t| state.occupancy(TrapId(t))).sum();
        prop_assert_eq!(total, 8);
    }

    /// Excess capacity identity: EC = capacity − occupancy, for every trap,
    /// after any shuttle sequence.
    #[test]
    fn excess_capacity_identity(
        hops in proptest::collection::vec((0u32..6, 0u32..3), 0..40),
    ) {
        let spec = MachineSpec::linear(3, 5, 2).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 6).unwrap();
        let mut state = MachineState::with_mapping(&spec, &mapping).unwrap();
        for (ion, trap) in hops {
            let _ = state.shuttle(IonId(ion), TrapId(trap));
            for t in 0..3 {
                let trap = TrapId(t);
                prop_assert_eq!(
                    state.excess_capacity(trap),
                    spec.total_capacity() - state.occupancy(trap)
                );
            }
        }
    }

    /// Adding redundant shuttles to a schedule never increases simulated
    /// program fidelity (the Fig. 8 monotonicity the paper relies on).
    #[test]
    fn extra_shuttles_never_help(extra in 1usize..6) {
        use muzzle_shuttle::machine::{Operation, Schedule};
        let mut circuit = Circuit::new(4);
        circuit.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        circuit.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        let spec = MachineSpec::linear(2, 6, 2).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)],
        ).unwrap();
        let lean = Schedule::new(mapping.clone(), vec![
            Operation::Gate { gate: muzzle_shuttle::circuit::GateId(0), trap: TrapId(0) },
            Operation::Gate { gate: muzzle_shuttle::circuit::GateId(1), trap: TrapId(1) },
        ]);
        // Insert ping-pong round trips of ion 0 before the gates.
        let mut ops = Vec::new();
        for _ in 0..extra {
            ops.push(Operation::Shuttle { ion: IonId(0), from: TrapId(0), to: TrapId(1) });
            ops.push(Operation::Shuttle { ion: IonId(0), from: TrapId(1), to: TrapId(0) });
        }
        ops.extend(lean.operations.iter().copied());
        let wasteful = Schedule::new(mapping, ops);
        let params = SimParams::default();
        let lean_f = simulate(&lean, &circuit, &spec, &params).unwrap().program_fidelity;
        let wasteful_f = simulate(&wasteful, &circuit, &spec, &params).unwrap().program_fidelity;
        prop_assert!(wasteful_f <= lean_f);
    }
}
